#ifndef DCG_DRIVER_POOL_CONNECTION_POOL_H_
#define DCG_DRIVER_POOL_CONNECTION_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "sim/event_loop.h"
#include "sim/time.h"

namespace dcg::driver::pool {

/// Pool knobs, mirroring the MongoDB driver-spec URI options. Defaults
/// are the *unconstrained* pool: unlimited size, free establishment, no
/// background maintenance. With defaults every checkout completes
/// synchronously, schedules no events and draws no randomness, so runs
/// recorded before the pool layer existed replay bit-identically (the
/// determinism goldens depend on this).
struct PoolOptions {
  /// Per-node cap on concurrent connections (maxPoolSize). 0 = unlimited:
  /// a checkout never queues.
  int max_pool_size = 0;

  /// Connections kept warm per node (minPoolSize): the maintenance loop
  /// re-establishes up to this many in the background, so the first ops
  /// after a pool clear do not all pay the establishment cost serially.
  int min_pool_size = 0;

  /// How long a checkout may sit in the wait queue before failing
  /// (waitQueueTimeoutMS). 0 = wait forever.
  sim::Duration wait_queue_timeout = 0;

  /// Simulated cost of establishing one connection (TCP + TLS + auth
  /// handshake), paid in sim-time by the checkout that triggers it. After
  /// a pool clear, this is the re-establishment cost the paper's client
  /// stack would observe as a latency spike.
  sim::Duration establish_cost = 0;

  /// Idle connections unused for longer than this are reaped down to
  /// min_pool_size (maxIdleTimeMS). 0 = never reap.
  sim::Duration max_idle_time = 0;

  /// Cadence of the background maintenance loop (reaping + min-pool
  /// top-up). Only scheduled when max_idle_time or min_pool_size is set.
  sim::Duration maintenance_interval = sim::Seconds(1);
};

/// A per-node client-side connection pool with checkout queueing —
/// the subsystem between MongoClient and the CommandBus. Every command
/// attempt checks a connection out, and every reply/timeout returns it
/// through the driver's unified CompleteOp/FailOp path.
///
/// State machine of one connection:
///
///   (establishing) --establish_cost elapses--> idle
///   idle --CheckOut--> checked-out
///   checked-out --CheckIn (healthy reply)--> idle | destroyed (stale gen)
///   checked-out --Discard (timeout/abort)--> destroyed
///   idle --Clear / reap / stale-at-checkout--> destroyed
///
/// Generations: `Clear()` bumps the pool generation. Idle connections are
/// destroyed immediately; checked-out ones finish their in-flight command
/// but are destroyed at check-in instead of being reused. A connection is
/// only ever handed out with `generation == pool generation` — the
/// invariant the chaos harness asserts (`stale_handouts() == 0`).
///
/// Fairness: the wait queue is strictly FIFO. A freed or newly
/// established connection always goes to the longest-waiting checkout.
/// Wait-queue timeouts fire exactly at enqueue time + wait_queue_timeout.
///
/// Deterministic by construction: no RNG, and no events scheduled unless
/// an establishment, a wait-queue timeout, or background maintenance is
/// actually in play.
class ConnectionPool {
 public:
  /// Result of one checkout request.
  struct Checkout {
    /// False: the wait queue timed out before a connection freed up.
    bool ok = false;
    /// Pool-unique connection id (0 when !ok). Pass back to CheckIn or
    /// Discard exactly once.
    uint64_t conn_id = 0;
    /// Pool generation the connection was established under.
    uint64_t generation = 0;
    /// Time spent waiting: queueing plus any establishment this checkout
    /// paid for. 0 for a synchronous hit on an idle connection.
    sim::Duration wait = 0;
  };
  using CheckoutCallback = std::function<void(const Checkout&)>;

  /// Lifetime totals, for metrics::OpCounters, experiment rows and tests.
  struct Stats {
    uint64_t checkouts = 0;          // successful checkouts delivered
    uint64_t checkout_timeouts = 0;  // wait-queue timeouts
    uint64_t established = 0;        // connections ever created
    uint64_t destroyed = 0;          // stale, discarded, cleared or reaped
    uint64_t clears = 0;             // Clear() calls
    uint64_t max_queue_depth = 0;    // high-water mark of the wait queue
    sim::Duration wait_total = 0;    // sum of Checkout::wait
  };

  ConnectionPool(sim::EventLoop* loop, PoolOptions options);

  ConnectionPool(const ConnectionPool&) = delete;
  ConnectionPool& operator=(const ConnectionPool&) = delete;

  /// Requests a connection. The callback fires synchronously when an idle
  /// connection (or free capacity with zero establishment cost) is
  /// available, otherwise later — after establishment, after a checked-out
  /// connection returns, or with ok=false at the wait-queue deadline.
  void CheckOut(CheckoutCallback done);

  /// Returns a healthy connection (the attempt got a reply). Stale-
  /// generation connections are destroyed instead of being reused.
  void CheckIn(uint64_t conn_id);

  /// Returns a perished connection (attempt timeout, node declared down):
  /// it is destroyed, never reused — real drivers close the socket, since
  /// a late reply would desynchronise the wire.
  void Discard(uint64_t conn_id);

  /// Connection-pool clear (driver-spec pool.clear()): bumps the
  /// generation, destroys idle connections now and in-flight ones at
  /// check-in. Queued checkouts stay queued and are served by freshly
  /// established connections — paying establish_cost — as capacity frees.
  void Clear();

  /// Starts background maintenance (min-pool top-up + idle reaping) when
  /// configured. Without it the pool is purely demand-driven.
  void StartMaintenance();

  uint64_t generation() const { return generation_; }
  int checked_out() const { return checked_out_; }
  int idle() const { return static_cast<int>(idle_.size()); }
  /// Checkouts currently queued (excludes those paying establishment).
  int queue_depth() const { return static_cast<int>(wait_queue_.size()); }
  /// Live connections: idle + checked out + establishing.
  int total_connections() const { return total_; }

  const Stats& stats() const { return stats_; }

  /// Connections handed out with a stale generation — the generation
  /// invariant says this is always 0; the chaos harness asserts it.
  uint64_t stale_handouts() const { return stale_handouts_; }

  const PoolOptions& options() const { return options_; }

 private:
  struct Connection {
    uint64_t generation = 0;
    bool checked_out = false;
  };
  struct Waiter {
    CheckoutCallback done;
    sim::Time enqueued_at = 0;
    sim::EventId timeout_timer = 0;
  };

  bool AtCapacity() const {
    return options_.max_pool_size > 0 && total_ >= options_.max_pool_size;
  }
  /// Hands `conn_id` to `done`, stamping wait/stats. The handout site —
  /// the generation invariant is checked here.
  void Deliver(CheckoutCallback done, uint64_t conn_id, sim::Duration wait);
  /// Begins establishing one connection for `waiter` (nullptr = a warm
  /// min-pool connection with no one waiting on it).
  void Establish(std::unique_ptr<Waiter> waiter);
  void FinishEstablish(std::unique_ptr<Waiter> waiter, uint64_t generation);
  void DestroyConnection(uint64_t conn_id);
  /// A connection or capacity slot just freed: serve the FIFO wait queue.
  void ServeQueue();
  void MaintenanceLoop();

  sim::EventLoop* loop_;
  PoolOptions options_;

  uint64_t generation_ = 0;
  uint64_t next_conn_id_ = 1;
  int total_ = 0;        // idle + checked out + establishing
  int checked_out_ = 0;
  std::map<uint64_t, Connection> connections_;
  /// Idle connections, most-recently-used at the back (LIFO reuse keeps
  /// hot connections hot; reaping scans from the front, the coldest end).
  std::deque<std::pair<uint64_t, sim::Time>> idle_;  // (conn, idle since)
  std::deque<std::unique_ptr<Waiter>> wait_queue_;   // FIFO

  Stats stats_;
  uint64_t stale_handouts_ = 0;
  bool maintenance_running_ = false;
};

}  // namespace dcg::driver::pool

#endif  // DCG_DRIVER_POOL_CONNECTION_POOL_H_
