#include "driver/read_preference.h"

namespace dcg::driver {

std::string_view ToString(ReadPreference pref) {
  switch (pref) {
    case ReadPreference::kPrimary:
      return "primary";
    case ReadPreference::kPrimaryPreferred:
      return "primaryPreferred";
    case ReadPreference::kSecondary:
      return "secondary";
    case ReadPreference::kSecondaryPreferred:
      return "secondaryPreferred";
    case ReadPreference::kNearest:
      return "nearest";
  }
  return "unknown";
}

}  // namespace dcg::driver
