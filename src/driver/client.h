#ifndef DCG_DRIVER_CLIENT_H_
#define DCG_DRIVER_CLIENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "driver/pool/connection_pool.h"
#include "driver/read_preference.h"
#include "metrics/histogram.h"
#include "metrics/op_counters.h"
#include "net/network.h"
#include "obs/trace.h"
#include "proto/command.h"
#include "sim/event_loop.h"
#include "sim/random.h"

namespace dcg::driver {

/// Driver configuration (mirrors mongocxx/driver-spec behaviour).
struct ClientOptions {
  /// Secondaries within this much of the fastest secondary's RTT are
  /// eligible for selection (MongoDB's 15 ms localThresholdMS, §2.2).
  sim::Duration selection_latency_window = sim::Millis(15);

  /// How often the driver pings each node to maintain RTT estimates
  /// (topology monitoring).
  sim::Duration rtt_probe_interval = sim::Seconds(1);

  /// EWMA weight for new RTT samples (driver spec uses 0.2).
  double rtt_ewma_alpha = 0.2;

  /// RTT probes that outlive this are abandoned (the node or link is
  /// down; reachability is tracked by the hello loop, not by pings).
  sim::Duration ping_timeout = sim::Seconds(2);

  /// How often the driver sends `hello` to every node to maintain its
  /// topology view (who is primary, who is reachable).
  sim::Duration hello_interval = sim::Millis(500);

  /// A node that has not answered any traffic for this long is marked
  /// unreachable; its in-flight attempts are failed over immediately
  /// (connection-pool clear on server-down, per the driver spec).
  sim::Duration hello_timeout = sim::Millis(1500);

  /// Optional maxStalenessSeconds: secondaries whose estimated staleness
  /// exceeds this are excluded from selection. -1 disables the filter.
  /// Real MongoDB requires >= 90 s (§2.2); we accept any value so the
  /// ablation can compare it against Decongestant's finer-grained bound,
  /// and `enforce_mongodb_min_staleness` restores the real constraint.
  int64_t max_staleness_seconds = -1;
  bool enforce_mongodb_min_staleness = false;

  /// Poll interval for the staleness cache backing maxStalenessSeconds.
  sim::Duration staleness_refresh_interval = sim::Seconds(1);

  /// Backoff between server-selection retries when no node is currently
  /// selectable (e.g. during a fail-over).
  sim::Duration selection_retry_interval = sim::Millis(200);

  /// Per-attempt timeout: when a sent command has produced no reply for
  /// this long (silent network loss — the server never errors, it just
  /// never answers), the attempt is abandoned and the op retries on a
  /// freshly selected node. 0 disables (an op can then wedge forever on
  /// a lossy link, like the old driver did).
  sim::Duration attempt_timeout = sim::Seconds(10);

  /// Bounded exponential backoff between retry attempts.
  sim::Duration retry_backoff_base = sim::Millis(2);
  sim::Duration retry_backoff_max = sim::Seconds(1);

  /// Default retry budget per op: -1 = unlimited (ops without a deadline
  /// keep trying, preserving the old driver's never-give-up semantics).
  int max_retries = -1;

  /// Default per-op deadline (maxTimeMS); 0 = none. Ops past their
  /// deadline complete with `timed_out` set. Enforced client-side: a
  /// dropped message is silent, so only the client can keep the promise.
  sim::Duration default_op_deadline = 0;

  /// Opt-in hedged reads: after a delay at the `hedge_quantile` of
  /// recently observed read latencies, a second copy of a non-primary
  /// read is sent to the next-best eligible secondary; the first reply
  /// wins and the loser is discarded client-side. Off by default — when
  /// off, the read path schedules nothing extra and draws no randomness.
  bool hedged_reads = false;
  double hedge_quantile = 0.9;
  sim::Duration hedge_min_delay = sim::Millis(1);

  /// Opt-in driver-side command batching (DESIGN.md § Batching &
  /// amortisation): attempts targeting the same node coalesce into one
  /// proto::Envelope, flushed when `batch_max_ops` accumulate, when
  /// `batch_max_delay` elapses, or immediately when a member's deadline
  /// is within one flush delay. One pooled connection carries the whole
  /// envelope; the server charges one envelope_base plus a discounted
  /// per-op increment (ServiceModel's envelope cost table). Off by
  /// default — when off, the send path schedules no extra events and
  /// draws no randomness, so determinism goldens replay unchanged.
  bool batching_enabled = false;
  int batch_max_ops = 16;
  sim::Duration batch_max_delay = sim::Micros(200);

  /// Per-node connection pool (maxPoolSize, minPoolSize,
  /// waitQueueTimeoutMS, establishment cost, idle reaping). Defaults are
  /// the unconstrained pool — synchronous checkouts, no extra events —
  /// so pre-pool determinism goldens replay unchanged.
  pool::PoolOptions pool;
};

/// Per-operation overrides (passed alongside a Read/Write call).
struct OpOptions {
  /// Relative deadline for this op; -1 = use the client default, 0 =
  /// explicitly none.
  sim::Duration deadline = -1;
  /// Retry budget; -2 = use the client default, -1 = unlimited.
  int max_retries = -2;
  /// False excludes this read from hedging even when the client hedges.
  bool hedge_eligible = true;
  /// False keeps this op's latency out of the balancer's feed (control
  /// traffic such as the S-shaped-curve probe reads).
  bool record_latency = true;
  /// Routing metadata stamped on every attempt's command. Sharded mode:
  /// the application client names collection + shard-key value (bodies
  /// are opaque closures a router cannot inspect); the router stamps the
  /// resolved chunk/version on the sub-ops it fans out. Inert (default
  /// empty) against unsharded buses.
  proto::RouteInfo route;
  /// Trace the op's spans should belong to instead of its own op id, and
  /// the span they parent under — set by a router issuing sub-ops so the
  /// client→router→shard legs link into one tree. 0 = own trace / root.
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
};

/// The client-side library every simulated application thread shares. It
/// speaks only the wire protocol: topology comes from hello/serverStatus
/// replies, liveness from reply timeouts, data from find/write commands —
/// never from touching replica-set internals. Per-op it provides node
/// selection per Read Preference, deadlines, retries with bounded
/// backoff and re-selection, opt-in hedged reads, and a unified
/// completion path feeding the Read Balancer's latency samples.
class MongoClient {
 public:
  struct ReadResult {
    sim::Duration latency = 0;
    ReadPreference requested = ReadPreference::kPrimary;
    int node = 0;  // replica-set node index actually used
    bool used_secondary = false;
    /// The serving node's lastAppliedOpTime at execution — the
    /// operationTime MongoDB returns for causal sessions.
    repl::OpTime operation_time;
    /// False when the op failed (deadline hit or retry budget spent).
    bool ok = true;
    bool timed_out = false;
    /// The serving shard rejected the op's chunk version (kStaleConfig).
    /// Surfaced instead of retried: routing is the caller's (router's)
    /// job — it must refresh its chunk map and re-issue.
    bool stale_config = false;
    /// Structured-find result (Find() only; null for plain reads).
    std::shared_ptr<const proto::FindResult> find;
    /// Retry attempts this op needed (0 = first attempt answered).
    int retries = 0;
    /// Whether a hedge was sent, and whether it answered first.
    bool hedged = false;
    bool hedge_won = false;
    /// Total time this op spent waiting for pool checkouts (queueing +
    /// connection establishment), across all attempts. Included in
    /// `latency` — it is client-observed time.
    sim::Duration checkout_wait = 0;
  };

  struct WriteResult {
    sim::Duration latency = 0;
    bool committed = false;
    /// Commit point of the transaction (for causal sessions).
    repl::OpTime operation_time;
    /// False when the op failed (deadline hit or retry budget spent).
    bool ok = true;
    bool timed_out = false;
    /// Chunk-version rejection — nothing was applied (the shard checks
    /// admission before the transaction body runs), so re-routing after a
    /// refresh cannot duplicate the write.
    bool stale_config = false;
    int retries = 0;
    sim::Duration checkout_wait = 0;
  };

  /// One record per completed op, delivered on the unified completion
  /// path (the Read Balancer installs an observer to harvest latencies).
  struct OpStats {
    bool is_read = true;
    ReadPreference requested = ReadPreference::kPrimary;
    sim::Duration latency = 0;
    bool ok = false;
    bool timed_out = false;
    bool stale_config = false;
    int retries = 0;
    bool hedged = false;
    bool hedge_won = false;
    int node = -1;
    bool used_secondary = false;
    bool record_latency = true;
    /// Pool checkout wait included in `latency` (see ReadResult). The
    /// Read Balancer harvests `latency` whole, so a saturated pool on the
    /// primary inflates its server-side-latency estimate and sheds load —
    /// checkout wait *is* client-observed latency in the paper's sense.
    sim::Duration checkout_wait = 0;
  };
  using OpObserver = std::function<void(const OpStats&)>;

  /// The client dials the replica set through its command bus: the bus's
  /// registered server hosts double as the seed list (connection string),
  /// and everything else is learned from replies.
  MongoClient(sim::EventLoop* loop, sim::Rng rng, proto::CommandBus* bus,
              net::HostId client_host, ClientOptions options);

  MongoClient(const MongoClient&) = delete;
  MongoClient& operator=(const MongoClient&) = delete;

  /// Starts topology monitoring: the hello loop (reachability + primary
  /// discovery), RTT probing, and staleness polling when maxStaleness is
  /// set. Without Start() the client runs off its seed view (node 0
  /// primary, everyone reachable) and never notices failures.
  void Start();

  /// Returned by SelectNode when no server is currently selectable.
  static constexpr int kNoNode = -1;

  /// Picks a node index for a read with the given preference, or kNoNode
  /// when nothing is selectable (fail-over in progress).
  int SelectNode(ReadPreference pref);

  /// Issues a read-only operation/transaction. `body` runs against the
  /// chosen node's data at server-side completion; `done` runs back on the
  /// client with the measured end-to-end latency.
  void Read(ReadPreference pref, server::OpClass op_class,
            proto::ReadBody body, std::function<void(const ReadResult&)> done,
            OpOptions opts = {});

  /// Like Read, but the chosen node defers execution until it has applied
  /// `after` (afterClusterTime) — the causal-consistency read gate.
  void ReadAfter(ReadPreference pref, const repl::OpTime& after,
                 server::OpClass op_class, proto::ReadBody body,
                 std::function<void(const ReadResult&)> done,
                 OpOptions opts = {});

  /// Issues a structured find (inspectable, unlike a ReadBody closure —
  /// a router can scatter it across shards and merge partials). The
  /// matched documents arrive in `ReadResult::find`; every other per-op
  /// mechanism (deadline, retries, hedging, pools) applies unchanged.
  void Find(ReadPreference pref, server::OpClass op_class,
            std::shared_ptr<const proto::FindSpec> spec,
            std::function<void(const ReadResult&)> done, OpOptions opts = {});

  /// Issues a read-write transaction (always to the primary). With
  /// WriteConcern::kMajority the acknowledgement waits for majority
  /// replication. Writes are retryable: every attempt carries the same op
  /// id, and the server's transaction table ensures a retried write is
  /// acknowledged — not re-applied — when the first attempt did commit.
  void Write(server::OpClass op_class, proto::TxnBody body,
             std::function<void(const WriteResult&)> done,
             repl::WriteConcern concern = repl::WriteConcern::kW1,
             OpOptions opts = {});

  /// Issues a serverStatus command to the primary and returns the reply to
  /// the client host (full network round trip + primary CPU service).
  void ServerStatus(std::function<void(const proto::ServerStatusReply&)> done);

  /// Application-level ping to a node; `done(true, rtt)` on a completed
  /// round trip, `done(false, 0)` when the probe timed out.
  void PingNode(int node, std::function<void(bool ok, sim::Duration rtt)> done);

  /// Driver-maintained RTT estimate to a node (EWMA of probe results).
  sim::Duration RttEstimate(int node) const { return servers_[node].rtt_ewma; }

  int node_count() const { return static_cast<int>(servers_.size()); }
  /// The node the driver currently believes holds the primary role.
  int primary_index() const { return believed_primary_; }
  /// The highest election term the driver has seen in any hello payload —
  /// the monotonic clock its topology view is ordered by.
  uint64_t believed_term() const { return believed_term_; }
  /// Times the driver observed a primary change and cleared the deposed
  /// primary's connection pool (driver-spec "pool.clear() on stepdown").
  uint64_t stepdown_pool_clears() const { return stepdown_pool_clears_; }
  /// Whether the driver currently believes the node is reachable.
  bool NodeReachable(int node) const { return servers_[node].reachable; }

  /// Registers an observer on the unified completion path. Multicast:
  /// the Read Balancer harvests latencies and the experiment's metrics
  /// registry feeds per-preference histograms off the same records.
  void AddOpObserver(OpObserver observer) {
    observers_.push_back(std::move(observer));
  }

  /// Attaches the run's span tracer (nullptr detaches). Client-side spans
  /// — op, attempt, pool checkout, hedge arm, reply wire transit — are
  /// recorded here; the op id doubles as the trace id, and every command
  /// ships its attempt span id so server-side spans link causally.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  const metrics::OpCounters& op_counters() const { return counters_; }

  /// Occupancy (commands per envelope) of every envelope flushed so far.
  const metrics::Histogram& batch_occupancy() const {
    return batch_occupancy_;
  }
  /// Logical ops currently in flight, in any state. Tests and the chaos
  /// harness pair this with buffered_op_count() to assert the coalescing
  /// buffers drain — no op is silently parked forever.
  size_t pending_op_count() const { return pending_.size(); }
  /// Ops currently sitting in a coalescing buffer awaiting a flush.
  size_t buffered_op_count() const;

  /// Per-node connection pool (every command attempt checks out of the
  /// target node's pool before it touches the wire).
  pool::ConnectionPool& node_pool(int node) { return *pools_[node]; }
  const pool::ConnectionPool& node_pool(int node) const {
    return *pools_[node];
  }

  /// Clears one node's pool (driver-spec pool.clear(): generation bump,
  /// idle connections dropped, in-flight ones perish at check-in). Called
  /// internally on hello silence; exposed for the pool_clear fault.
  void ClearPool(int node) { pools_[node]->Clear(); }

  /// Pool stats summed across all nodes (checkouts, timeouts, queue
  /// high-water marks) for experiment rows and CLI summaries.
  pool::ConnectionPool::Stats PoolTotals() const;
  /// Current total wait-queue depth across all node pools.
  int PoolQueueDepth() const;
  /// Connections currently checked out across all node pools.
  int PoolCheckedOut() const;

  net::HostId client_host() const { return client_host_; }
  sim::EventLoop& loop() { return *loop_; }

 private:
  /// What the driver knows about one server, learned entirely from
  /// replies (the driver-spec ServerDescription).
  struct ServerDescription {
    net::HostId host = -1;
    bool reachable = true;
    sim::Time last_heard = 0;
    sim::Duration rtt_ewma = 0;
    int64_t staleness_s = 0;
  };

  /// One logical in-flight operation (may span several attempts).
  struct PendingOp {
    bool is_read = true;
    ReadPreference pref = ReadPreference::kPrimary;
    server::OpClass op_class = server::OpClass::kPointRead;
    proto::ReadBody read_body;
    std::shared_ptr<const proto::FindSpec> find_spec;
    proto::RouteInfo route;
    proto::TxnBody txn_body;
    repl::WriteConcern concern = repl::WriteConcern::kW1;
    repl::OpTime after;
    sim::Time start = 0;
    sim::Time deadline = 0;  // absolute; 0 = none
    int max_retries = -1;
    bool hedge_eligible = true;
    bool record_latency = true;
    int attempts_sent = 0;
    int target = kNoNode;       // node of the outstanding attempt
    int last_target = kNoNode;  // excluded on re-selection
    /// Connection of the outstanding attempt (0 = none checked out:
    /// either between attempts or still queued in the pool).
    uint64_t conn_id = 0;
    int conn_node = kNoNode;
    /// True while the attempt sits in its target node's coalescing
    /// buffer awaiting an envelope flush (batching only).
    bool buffered = false;
    /// In-flight envelope carrying the attempt (0 = none / unbatched).
    /// The shared connection is tracked on the envelope, not the op, so
    /// ReleaseOpConnections cannot double-settle it.
    uint64_t envelope_id = 0;
    /// Connection carrying the hedge request, when one is outstanding.
    uint64_t hedge_conn_id = 0;
    int hedge_node = kNoNode;
    /// Accumulated pool checkout wait across every attempt of this op.
    sim::Duration checkout_wait = 0;
    bool hedged = false;
    sim::EventId attempt_timer = 0;
    sim::EventId deadline_timer = 0;
    sim::EventId backoff_timer = 0;
    sim::EventId hedge_timer = 0;
    /// Tracing bookkeeping (all zero when the tracer is off). Span ids
    /// are allocated when the interval opens; the record is written once,
    /// when it closes.
    uint64_t op_span = 0;
    uint64_t attempt_span = 0;
    sim::Time attempt_start = 0;
    sim::Time checkout_start = 0;
    uint64_t hedge_span = 0;
    sim::Time hedge_start = 0;
    /// Trace/parent overrides for router sub-ops (OpOptions::trace_id).
    uint64_t trace_override = 0;
    uint64_t parent_span_override = 0;
    std::function<void(const ReadResult&)> read_done;
    std::function<void(const WriteResult&)> write_done;
  };

  void HelloLoop();
  void ProbeLoop();
  void StalenessLoop();
  std::vector<int> EligibleSecondaries();
  /// Re-selection for retries: avoids `exclude` when an alternative
  /// eligible node exists.
  int SelectNodeExcluding(ReadPreference pref, int exclude);

  uint64_t BeginOp(PendingOp op, OpOptions opts);
  void StartAttempt(uint64_t op_id);
  /// Checkout completion for attempt number `attempt` targeting `node`;
  /// sends the command, or retries on a wait-queue timeout. Returns the
  /// connection unused when the op was superseded while queued.
  void OnCheckout(uint64_t op_id, int node, int attempt,
                  const pool::ConnectionPool::Checkout& co);
  /// Ships the attempt's command over its checked-out connection and arms
  /// the attempt/hedge timers.
  void SendAttempt(uint64_t op_id);
  /// (op id, attempt ordinal) captured at flush time: the attempt may be
  /// superseded while the envelope's shared checkout sits in the pool's
  /// wait queue, and a stale rider must not ship twice.
  struct BatchEntry {
    uint64_t op_id = 0;
    int attempt = 0;
  };
  /// Parks the attempt in `node`'s coalescing buffer (batching on). The
  /// buffer flushes on size (batch_max_ops), delay (batch_max_delay), or
  /// immediately when this op's deadline is within one flush delay.
  void EnqueueInBatch(uint64_t op_id, int node);
  /// Drains `node`'s buffer into one envelope riding one pool checkout.
  void FlushBatch(int node);
  void OnEnvelopeCheckout(int node, std::vector<BatchEntry> batch,
                          sim::Time flush_start,
                          const pool::ConnectionPool::Checkout& co);
  /// Removes a still-buffered op from its node's buffer (the op
  /// completed, failed, or retargeted before the flush).
  void RemoveFromBatch(uint64_t op_id, int node);
  /// Drops the op's claim on its in-flight envelope. The last rider off
  /// settles the shared connection: checked in healthy only when every
  /// rider's winning reply rode it, discarded otherwise.
  void DetachFromEnvelope(PendingOp* op, uint64_t healthy_conn);
  /// Connection carrying the op's in-flight envelope (0 = none).
  uint64_t EnvelopeConn(const PendingOp& op) const;
  void OnHedgeCheckout(uint64_t op_id, int node, int attempt,
                       const pool::ConnectionPool::Checkout& co);
  void OnReply(uint64_t op_id, const proto::Reply& reply);
  void OnAttemptTimeout(uint64_t op_id);
  void OnDeadline(uint64_t op_id);
  void OnHedgeTimer(uint64_t op_id);
  /// Abandons the outstanding attempt and schedules the next one with
  /// bounded exponential backoff (or fails the op: budget spent).
  void RetryAttempt(uint64_t op_id);
  void CompleteOp(uint64_t op_id, const proto::Reply& reply);
  void FailOp(uint64_t op_id, bool timed_out, bool stale_config = false);
  /// Trace id the op's spans belong to (its own op id, unless a router
  /// threaded the enclosing client op's trace through OpOptions).
  uint64_t TraceId(uint64_t op_id, const PendingOp& op) const {
    return op.trace_override != 0 ? op.trace_override : op_id;
  }
  void CancelOpTimers(PendingOp* op);
  /// Returns every connection the op still holds: the winning reply's
  /// connection is checked in healthy, abandoned ones are discarded.
  /// `healthy_conn` names the connection that carried a reply (0 = none).
  void ReleaseOpConnections(PendingOp* op, uint64_t healthy_conn);
  /// Connection-pool clear: fails over every attempt outstanding against
  /// a node that was just declared unreachable.
  void AbortAttemptsOn(int node);
  /// Merges a reply's hello piggyback into the topology view.
  void AdoptTopology(const proto::HelloReply& hello);
  /// One branch per probe site: tracing must be free when off.
  bool tracing() const { return tracer_ != nullptr && tracer_->enabled(); }
  /// Writes the op's attempt / hedge / op spans at completion. `reply` is
  /// null when the op failed (deadline, retry budget).
  void CloseOpSpans(const PendingOp& op, uint64_t op_id, bool ok,
                    const proto::Reply* reply);
  void MarkHeard(int node);
  /// Current hedge delay: the configured quantile of recent read
  /// latencies (floored at hedge_min_delay).
  sim::Duration HedgeDelay() const;
  void RecordReadLatency(sim::Duration latency);

  sim::EventLoop* loop_;
  sim::Rng rng_;
  proto::CommandBus* bus_;
  net::Network* network_;
  net::HostId client_host_;
  ClientOptions options_;

  std::vector<ServerDescription> servers_;
  /// One connection pool per node, indexed like servers_.
  std::vector<std::unique_ptr<pool::ConnectionPool>> pools_;
  int believed_primary_ = 0;
  uint64_t believed_term_ = 0;
  uint64_t stepdown_pool_clears_ = 0;
  bool started_ = false;

  // std::map: deterministic iteration (AbortAttemptsOn scans it).
  std::map<uint64_t, PendingOp> pending_;
  uint64_t next_op_id_ = 1;

  /// Per-node coalescing buffer (batching on; empty and event-free when
  /// batching is off). Indexed like servers_.
  struct NodeBatcher {
    std::vector<uint64_t> buffered;
    sim::EventId flush_timer = 0;
    /// Enqueue instant of the oldest buffered op (envelope span start).
    sim::Time first_enqueue = 0;
  };
  /// One envelope on the wire. Riders detach as they complete / retry /
  /// fail; `outstanding` counts the ones still attached.
  struct InflightEnvelope {
    int node = kNoNode;
    uint64_t conn_id = 0;
    int outstanding = 0;
    bool healthy = true;
  };

  std::vector<NodeBatcher> batchers_;
  // std::map: deterministic iteration, like pending_.
  std::map<uint64_t, InflightEnvelope> envelopes_;
  uint64_t next_envelope_id_ = 1;
  metrics::Histogram batch_occupancy_;

  metrics::OpCounters counters_;
  std::vector<OpObserver> observers_;
  obs::Tracer* tracer_ = nullptr;

  /// Ring of recent completed-read latencies driving the hedge delay.
  std::vector<sim::Duration> read_latency_ring_;
  size_t read_latency_next_ = 0;
};

}  // namespace dcg::driver

#endif  // DCG_DRIVER_CLIENT_H_
