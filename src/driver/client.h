#ifndef DCG_DRIVER_CLIENT_H_
#define DCG_DRIVER_CLIENT_H_

#include <functional>
#include <vector>

#include "driver/read_preference.h"
#include "net/network.h"
#include "repl/replica_set.h"
#include "sim/event_loop.h"
#include "sim/random.h"

namespace dcg::driver {

/// Driver configuration (mirrors mongocxx/driver-spec behaviour).
struct ClientOptions {
  /// Secondaries within this much of the fastest secondary's RTT are
  /// eligible for selection (MongoDB's 15 ms localThresholdMS, §2.2).
  sim::Duration selection_latency_window = sim::Millis(15);

  /// How often the driver pings each node to maintain RTT estimates
  /// (topology monitoring).
  sim::Duration rtt_probe_interval = sim::Seconds(1);

  /// EWMA weight for new RTT samples (driver spec uses 0.2).
  double rtt_ewma_alpha = 0.2;

  /// Optional maxStalenessSeconds: secondaries whose estimated staleness
  /// exceeds this are excluded from selection. -1 disables the filter.
  /// Real MongoDB requires >= 90 s (§2.2); we accept any value so the
  /// ablation can compare it against Decongestant's finer-grained bound,
  /// and `enforce_mongodb_min_staleness` restores the real constraint.
  int64_t max_staleness_seconds = -1;
  bool enforce_mongodb_min_staleness = false;

  /// Poll interval for the staleness cache backing maxStalenessSeconds.
  sim::Duration staleness_refresh_interval = sim::Seconds(1);

  /// Backoff between server-selection retries when no node is currently
  /// selectable (e.g. during a fail-over).
  sim::Duration selection_retry_interval = sim::Millis(200);
};

/// The client-side library every simulated application thread shares: node
/// selection per Read Preference, RTT bookkeeping, and the network hop to
/// and from the chosen node. Latencies it reports are end-to-end as a real
/// client would observe them.
class MongoClient {
 public:
  struct ReadResult {
    sim::Duration latency = 0;
    ReadPreference requested = ReadPreference::kPrimary;
    int node = 0;  // replica-set node index actually used
    bool used_secondary = false;
    /// The serving node's lastAppliedOpTime at execution — the
    /// operationTime MongoDB returns for causal sessions.
    repl::OpTime operation_time;
  };

  struct WriteResult {
    sim::Duration latency = 0;
    bool committed = false;
    /// Commit point of the transaction (for causal sessions).
    repl::OpTime operation_time;
  };

  MongoClient(sim::EventLoop* loop, sim::Rng rng, net::Network* network,
              repl::ReplicaSet* rs, net::HostId client_host,
              ClientOptions options);

  MongoClient(const MongoClient&) = delete;
  MongoClient& operator=(const MongoClient&) = delete;

  /// Starts RTT probing (and staleness polling when maxStaleness is set).
  void Start();

  /// Returned by SelectNode when no server is currently selectable.
  static constexpr int kNoNode = -1;

  /// Picks a node index for a read with the given preference, or kNoNode
  /// when nothing is selectable (fail-over in progress).
  int SelectNode(ReadPreference pref);

  /// Issues a read-only operation/transaction. `body` runs against the
  /// chosen node's data at server-side completion; `done` runs back on the
  /// client with the measured end-to-end latency.
  void Read(ReadPreference pref, server::OpClass op_class,
            repl::ReplicaSet::ReadBody body,
            std::function<void(const ReadResult&)> done);

  /// Like Read, but the chosen node defers execution until it has applied
  /// `after` (afterClusterTime) — the causal-consistency read gate.
  void ReadAfter(ReadPreference pref, const repl::OpTime& after,
                 server::OpClass op_class, repl::ReplicaSet::ReadBody body,
                 std::function<void(const ReadResult&)> done);

  /// Issues a read-write transaction (always to the primary). With
  /// WriteConcern::kMajority the acknowledgement waits for majority
  /// replication.
  void Write(server::OpClass op_class, repl::ReplicaSet::TxnBody body,
             std::function<void(const WriteResult&)> done,
             repl::WriteConcern concern = repl::WriteConcern::kW1);

  /// Issues a serverStatus command to the primary and returns the reply to
  /// the client host (full network round trip + primary CPU service).
  void ServerStatus(
      std::function<void(const repl::ReplicaSet::ServerStatusReply&)> done);

  /// Application-level ping to a node; `done(rtt)` runs on the client.
  void PingNode(int node, std::function<void(sim::Duration)> done);

  /// Driver-maintained RTT estimate to a node (EWMA of probe results).
  sim::Duration RttEstimate(int node) const { return rtt_estimate_[node]; }

  net::HostId client_host() const { return client_host_; }
  repl::ReplicaSet& replica_set() { return *rs_; }
  sim::EventLoop& loop() { return *loop_; }

 private:
  void ProbeLoop();
  void StalenessLoop();
  std::vector<int> EligibleSecondaries();

  sim::EventLoop* loop_;
  sim::Rng rng_;
  net::Network* network_;
  repl::ReplicaSet* rs_;
  net::HostId client_host_;
  ClientOptions options_;
  std::vector<sim::Duration> rtt_estimate_;
  std::vector<int64_t> staleness_cache_;  // per node index, seconds
};

}  // namespace dcg::driver

#endif  // DCG_DRIVER_CLIENT_H_
