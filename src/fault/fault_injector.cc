#include "fault/fault_injector.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/check.h"

namespace dcg::fault {

std::string_view ToString(FaultType type) {
  switch (type) {
    case FaultType::kLatencySpike:
      return "latency";
    case FaultType::kPacketLoss:
      return "loss";
    case FaultType::kPartition:
      return "partition";
    case FaultType::kCrash:
      return "crash";
    case FaultType::kRestart:
      return "restart";
    case FaultType::kApplyThrottle:
      return "throttle";
    case FaultType::kClockSkew:
      return "skew";
    case FaultType::kCpuSlowdown:
      return "slowdown";
    case FaultType::kPoolClear:
      return "pool_clear";
  }
  return "unknown";
}

sim::Time FaultSchedule::LastActivity() const {
  sim::Time last = 0;
  for (const FaultEvent& e : events) {
    last = std::max(last, std::max(e.start, e.end));
  }
  return last;
}

// --- spec parsing ---

namespace {

bool ParseType(const std::string& token, FaultType* type) {
  for (FaultType t :
       {FaultType::kLatencySpike, FaultType::kPacketLoss,
        FaultType::kPartition, FaultType::kCrash, FaultType::kRestart,
        FaultType::kApplyThrottle, FaultType::kClockSkew,
        FaultType::kCpuSlowdown, FaultType::kPoolClear}) {
    if (token == ToString(t)) {
      *type = t;
      return true;
    }
  }
  return false;
}

std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (begin <= s.size()) {
    const size_t end = s.find(sep, begin);
    if (end == std::string::npos) {
      parts.push_back(s.substr(begin));
      break;
    }
    parts.push_back(s.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

bool ParseOneEvent(const std::string& token, FaultEvent* event,
                   std::string* error) {
  const size_t at = token.find('@');
  if (at == std::string::npos) {
    *error = "missing '@' in \"" + token + "\"";
    return false;
  }
  if (!ParseType(token.substr(0, at), &event->type)) {
    *error = "unknown fault type in \"" + token + "\"";
    return false;
  }
  std::vector<std::string> fields = SplitOn(token.substr(at + 1), ':');
  // fields[0] = "start" or "start-end" (seconds). '-' can also begin a
  // negative number only in key values, never in the time field.
  {
    const std::string& window = fields[0];
    char* rest = nullptr;
    const double start_s = std::strtod(window.c_str(), &rest);
    event->start = sim::Seconds(start_s);
    if (*rest == '-') {
      event->end = sim::Seconds(std::strtod(rest + 1, &rest));
      if (event->end <= event->start) {
        *error = "heal time not after start in \"" + token + "\"";
        return false;
      }
    }
    if (*rest != '\0') {
      *error = "bad time window in \"" + token + "\"";
      return false;
    }
  }
  for (size_t i = 1; i < fields.size(); ++i) {
    const size_t eq = fields[i].find('=');
    if (eq == std::string::npos) {
      *error = "expected key=value, got \"" + fields[i] + "\"";
      return false;
    }
    const std::string key = fields[i].substr(0, eq);
    const std::string value = fields[i].substr(eq + 1);
    if (key == "nodes" || key == "node") {
      for (const std::string& n : SplitOn(value, '+')) {
        event->nodes.push_back(std::atoi(n.c_str()));
      }
    } else if (key == "x" || key == "p") {
      event->value = std::atof(value.c_str());
    } else if (key == "ms") {
      event->delay = sim::Millis(std::atof(value.c_str()));
    } else if (key == "in") {
      event->inbound_only = std::atoi(value.c_str()) != 0;
    } else if (key == "client") {
      event->include_client = std::atoi(value.c_str()) != 0;
    } else {
      *error = "unknown key \"" + key + "\" in \"" + token + "\"";
      return false;
    }
  }
  if (event->nodes.empty()) {
    *error = "no target nodes in \"" + token + "\"";
    return false;
  }
  // Per-type validation and defaults.
  switch (event->type) {
    case FaultType::kLatencySpike:
      if (event->value <= 0.0) event->value = 1.0;  // pure added delay
      if (event->delay == 0 && event->value == 1.0) {
        *error = "latency fault needs ms= and/or x= in \"" + token + "\"";
        return false;
      }
      break;
    case FaultType::kPacketLoss:
      if (event->value <= 0.0 || event->value > 1.0) {
        *error = "loss fault needs p= in (0, 1] in \"" + token + "\"";
        return false;
      }
      break;
    case FaultType::kApplyThrottle:
    case FaultType::kCpuSlowdown:
      if (event->value <= 0.0) {
        *error = std::string(ToString(event->type)) +
                 " fault needs x= > 0 in \"" + token + "\"";
        return false;
      }
      break;
    case FaultType::kClockSkew:
      if (event->delay == 0) {
        *error = "skew fault needs ms= in \"" + token + "\"";
        return false;
      }
      break;
    case FaultType::kPartition:
    case FaultType::kCrash:
    case FaultType::kRestart:
    case FaultType::kPoolClear:
      break;
  }
  return true;
}

}  // namespace

bool ParseFaultSpec(const std::string& spec, FaultSchedule* out,
                    std::string* error) {
  for (const std::string& token : SplitOn(spec, ';')) {
    if (token.empty()) continue;
    FaultEvent event;
    if (!ParseOneEvent(token, &event, error)) return false;
    out->Add(std::move(event));
  }
  return true;
}

// --- random schedules ---

FaultSchedule MakeRandomSchedule(uint64_t seed, sim::Time horizon,
                                 int node_count) {
  DCG_CHECK(node_count >= 2);
  sim::Rng rng(seed);
  FaultSchedule schedule;
  // Degradations start after a warm-up tenth and heal before the last
  // fifth, so every run ends on a healthy cluster whose recovery the
  // invariant checkers can assert.
  const sim::Time lo = horizon / 10;
  const sim::Time hi = horizon - horizon / 5;
  std::vector<sim::Time> busy_until(static_cast<size_t>(node_count), 0);

  const int degradations = static_cast<int>(rng.UniformInt(3, 5));
  for (int i = 0; i < degradations; ++i) {
    FaultEvent event;
    const int node = static_cast<int>(rng.UniformInt(0, node_count - 1));
    const sim::Time earliest = std::max(lo, busy_until[node]);
    if (earliest >= hi - sim::Seconds(10)) continue;  // node fully booked
    event.start = earliest + rng.UniformInt(0, (hi - sim::Seconds(10) -
                                                earliest) /
                                                   sim::kSecond) *
                                 sim::kSecond;
    event.end = std::min<sim::Time>(
        hi, event.start + sim::Seconds(rng.UniformInt(8, 30)));
    event.nodes = {node};
    busy_until[node] = event.end + sim::Seconds(5);
    switch (rng.UniformInt(0, 5)) {
      case 0:
        event.type = FaultType::kLatencySpike;
        event.delay = sim::Millis(rng.UniformInt(2, 20));
        event.value = 1.0 + rng.NextDouble() * 2.0;
        break;
      case 1:
        event.type = FaultType::kPacketLoss;
        event.value = 0.05 + rng.NextDouble() * 0.35;
        event.inbound_only = rng.Bernoulli(0.5);
        break;
      case 2: {
        event.type = FaultType::kPartition;
        // Sometimes partition every secondary at once — the headline
        // StaleBound scenario.
        if (rng.Bernoulli(0.3)) {
          event.nodes.clear();
          for (int n = 1; n < node_count; ++n) event.nodes.push_back(n);
        }
        break;
      }
      case 3:
        event.type = FaultType::kApplyThrottle;
        event.value = 5.0 + rng.NextDouble() * 35.0;
        break;
      case 4:
        event.type = FaultType::kClockSkew;
        // Backwards only: the conservative direction, which can never
        // let a stale read slip past the bound.
        event.delay = -sim::Millis(rng.UniformInt(500, 3000));
        break;
      default:
        event.type = FaultType::kCpuSlowdown;
        event.value = 2.0 + rng.NextDouble() * 4.0;
        break;
    }
    schedule.Add(std::move(event));
  }

  // At most one crash/restart cycle, on a random node.
  if (rng.Bernoulli(0.7)) {
    const int victim = static_cast<int>(rng.UniformInt(0, node_count - 1));
    FaultEvent crash;
    crash.type = FaultType::kCrash;
    crash.start = lo + rng.UniformInt(0, (hi - lo) / (2 * sim::kSecond)) *
                           sim::kSecond;
    crash.nodes = {victim};
    FaultEvent restart;
    restart.type = FaultType::kRestart;
    restart.start = crash.start + sim::Seconds(rng.UniformInt(15, 40));
    restart.nodes = {victim};
    schedule.Add(std::move(crash)).Add(std::move(restart));
  }

  std::sort(schedule.events.begin(), schedule.events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.start < b.start;
            });
  return schedule;
}

// --- the injector ---

FaultInjector::FaultInjector(sim::EventLoop* loop, net::Network* network,
                             repl::ReplicaSet* rs, net::HostId client_host)
    : loop_(loop), network_(network), rs_(rs), client_host_(client_host) {}

void FaultInjector::Arm(const FaultSchedule& schedule) {
  for (const FaultEvent& event : schedule.events) {
    DCG_CHECK_MSG(!event.nodes.empty(), "fault event with no targets");
    for (int node : event.nodes) {
      DCG_CHECK(node >= 0 && node < rs_->node_count());
    }
    loop_->ScheduleAt(event.start, [this, event] { Apply(event); });
    const bool instantaneous = event.type == FaultType::kCrash ||
                               event.type == FaultType::kRestart ||
                               event.type == FaultType::kPoolClear;
    if (event.end >= 0 && !instantaneous) {
      loop_->ScheduleAt(event.end, [this, event] { Heal(event); });
    }
  }
}

std::vector<net::HostId> FaultInjector::PeerHosts(
    const FaultEvent& event) const {
  std::vector<net::HostId> peers;
  for (int i = 0; i < rs_->node_count(); ++i) {
    if (std::find(event.nodes.begin(), event.nodes.end(), i) ==
        event.nodes.end()) {
      peers.push_back(rs_->node(i).host());
    }
  }
  return peers;
}

void FaultInjector::LogEvent(const char* action, const FaultEvent& event) {
  std::string targets;
  for (int node : event.nodes) {
    if (!targets.empty()) targets += '+';
    targets += std::to_string(node);
  }
  char line[160];
  std::snprintf(line, sizeof(line),
                "t=%.3fs %s %s nodes=%s value=%.3f delay_ms=%.3f%s%s",
                sim::ToSeconds(loop_->Now()), action,
                std::string(ToString(event.type)).c_str(), targets.c_str(),
                event.value, sim::ToMillis(event.delay),
                event.inbound_only ? " inbound" : "",
                event.include_client ? " client" : "");
  log_.push_back(line);
}

void FaultInjector::Apply(const FaultEvent& event) {
  switch (event.type) {
    case FaultType::kLatencySpike: {
      net::Network::LinkFault fault;
      fault.extra_delay = event.delay;
      fault.delay_multiplier = event.value > 0 ? event.value : 1.0;
      for (int node : event.nodes) {
        const net::HostId host = rs_->node(node).host();
        for (net::HostId peer : PeerHosts(event)) {
          network_->SetLinkFault(host, peer, fault);
          network_->SetLinkFault(peer, host, fault);
        }
        if (client_host_ >= 0) {
          network_->SetLinkFault(host, client_host_, fault);
          network_->SetLinkFault(client_host_, host, fault);
        }
      }
      break;
    }
    case FaultType::kPacketLoss: {
      net::Network::LinkFault fault;
      fault.drop_probability = event.value;
      for (int node : event.nodes) {
        const net::HostId host = rs_->node(node).host();
        for (net::HostId peer : PeerHosts(event)) {
          network_->SetLinkFault(peer, host, fault);
          if (!event.inbound_only) network_->SetLinkFault(host, peer, fault);
        }
        if (event.include_client && client_host_ >= 0) {
          network_->SetLinkFault(client_host_, host, fault);
          if (!event.inbound_only) {
            network_->SetLinkFault(host, client_host_, fault);
          }
        }
      }
      break;
    }
    case FaultType::kPartition:
      for (int node : event.nodes) {
        const net::HostId host = rs_->node(node).host();
        for (net::HostId peer : PeerHosts(event)) {
          network_->BlockPair(host, peer);
        }
        if (event.include_client && client_host_ >= 0) {
          network_->BlockPair(host, client_host_);
        }
      }
      break;
    case FaultType::kCrash:
      for (int node : event.nodes) rs_->KillNode(node);
      break;
    case FaultType::kRestart:
      for (int node : event.nodes) {
        if (rs_->IsAlive(node) || !rs_->IsAlive(rs_->primary_index())) {
          LogEvent("skip", event);
          return;
        }
        rs_->RestartNode(node);
      }
      break;
    case FaultType::kApplyThrottle:
      for (int node : event.nodes) rs_->SetApplyThrottle(node, event.value);
      break;
    case FaultType::kClockSkew:
      for (int node : event.nodes) rs_->SetReportSkew(node, event.delay);
      break;
    case FaultType::kCpuSlowdown:
      for (int node : event.nodes) {
        rs_->node(node).server().set_fault_slowdown(event.value);
      }
      break;
    case FaultType::kPoolClear:
      if (!pool_clear_hook_) {
        LogEvent("skip", event);
        return;
      }
      for (int node : event.nodes) pool_clear_hook_(node);
      break;
  }
  ++events_applied_;
  LogEvent("apply", event);
}

void FaultInjector::Heal(const FaultEvent& event) {
  switch (event.type) {
    case FaultType::kLatencySpike:
      for (int node : event.nodes) {
        const net::HostId host = rs_->node(node).host();
        for (net::HostId peer : PeerHosts(event)) {
          network_->ClearLinkFault(host, peer);
          network_->ClearLinkFault(peer, host);
        }
        if (client_host_ >= 0) {
          network_->ClearLinkFault(host, client_host_);
          network_->ClearLinkFault(client_host_, host);
        }
      }
      break;
    case FaultType::kPacketLoss:
      for (int node : event.nodes) {
        const net::HostId host = rs_->node(node).host();
        for (net::HostId peer : PeerHosts(event)) {
          network_->ClearLinkFault(peer, host);
          if (!event.inbound_only) network_->ClearLinkFault(host, peer);
        }
        if (event.include_client && client_host_ >= 0) {
          network_->ClearLinkFault(client_host_, host);
          if (!event.inbound_only) {
            network_->ClearLinkFault(host, client_host_);
          }
        }
      }
      break;
    case FaultType::kPartition:
      for (int node : event.nodes) {
        const net::HostId host = rs_->node(node).host();
        for (net::HostId peer : PeerHosts(event)) {
          network_->UnblockPair(host, peer);
        }
        if (event.include_client && client_host_ >= 0) {
          network_->UnblockPair(host, client_host_);
        }
      }
      break;
    case FaultType::kApplyThrottle:
      for (int node : event.nodes) rs_->SetApplyThrottle(node, 1.0);
      break;
    case FaultType::kClockSkew:
      for (int node : event.nodes) rs_->SetReportSkew(node, 0);
      break;
    case FaultType::kCpuSlowdown:
      for (int node : event.nodes) {
        rs_->node(node).server().set_fault_slowdown(1.0);
      }
      break;
    case FaultType::kCrash:
    case FaultType::kRestart:
    case FaultType::kPoolClear:
      return;  // instantaneous; never scheduled for heal
  }
  ++events_healed_;
  LogEvent("heal", event);
}

}  // namespace dcg::fault
