#ifndef DCG_FAULT_FAULT_INJECTOR_H_
#define DCG_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/network.h"
#include "repl/replica_set.h"
#include "sim/event_loop.h"
#include "sim/random.h"
#include "sim/time.h"

namespace dcg::fault {

/// The fault vocabulary: everything the paper's dynamics sections (§4.4-4.6)
/// and the chaos harness need to degrade a run mid-flight.
enum class FaultType {
  /// Links touching the target nodes get slower: each one-way delay is
  /// multiplied by `value` (when > 0) and `delay` is added on top. Affects
  /// client links too — the balancer's RTT subtraction must cope.
  kLatencySpike,
  /// Messages on links between the target nodes and the other DB nodes
  /// are dropped with probability `value`. With `inbound_only`, only
  /// traffic *into* the targets drops (asymmetric loss). With
  /// `include_client`, the client↔target links drop too — exercising the
  /// driver's attempt timeouts and retry path.
  kPacketLoss,
  /// Replication-level partition: all traffic between the target nodes
  /// and the other DB nodes is blackholed until heal. Targets can still
  /// talk to each other (they are one side of the split). By default
  /// client links stay up, as when a replication mesh loses a switch but
  /// the frontend VLAN survives; with `include_client` the client is cut
  /// off from the targets as well, forcing command retries on another
  /// node.
  kPartition,
  /// Crashes the target nodes at `start` (ReplicaSet::KillNode semantics:
  /// elections, rollback). Never auto-heals; pair with kRestart.
  kCrash,
  /// Restarts previously crashed targets at `start` (initial sync from
  /// the primary). Skipped with a log entry if the node is already alive
  /// or no primary exists to sync from.
  kRestart,
  /// Oplog application on the targets costs `value`× as much (an
  /// IO-starved or throttled apply thread): secondaries lag while the
  /// network stays perfect.
  kApplyThrottle,
  /// The targets report lastAppliedOpTime with wall clocks shifted by
  /// `delay` (negative = staler-looking, the conservative direction;
  /// positive = fresher-looking, the dangerous one).
  kClockSkew,
  /// Every service time on the targets is multiplied by `value` (degraded
  /// machine / noisy neighbour).
  kCpuSlowdown,
  /// Clears the client's connection pool to the target nodes
  /// (driver-spec pool.clear(): generation bump, idle sockets dropped,
  /// in-flight ones perish at check-in). A client-side fault — it fires
  /// through the hook installed with SetPoolClearHook and is skipped with
  /// a log entry when no hook is set. Instantaneous; no heal.
  kPoolClear,
};

std::string_view ToString(FaultType type);

/// One scheduled fault: applied at `start`, healed at `end` (when `end` is
/// set and the type has heal semantics).
struct FaultEvent {
  FaultType type = FaultType::kLatencySpike;
  sim::Time start = 0;
  /// Heal time; < 0 means the fault persists to the end of the run.
  /// Ignored by kCrash / kRestart, which are instantaneous.
  sim::Time end = -1;
  /// Replica-set node indexes the fault targets.
  std::vector<int> nodes;
  /// Type-dependent magnitude: delay multiplier (kLatencySpike,
  /// kApplyThrottle, kCpuSlowdown) or drop probability (kPacketLoss).
  double value = 0.0;
  /// Type-dependent duration: added one-way delay (kLatencySpike) or the
  /// reported-clock shift (kClockSkew).
  sim::Duration delay = 0;
  /// kPacketLoss only: drop only messages flowing *into* the targets.
  bool inbound_only = false;
  /// kPartition / kPacketLoss: also affect the client↔target links (the
  /// command layer's deadline/retry machinery is then on the hook).
  bool include_client = false;
};

/// A time-ordered list of fault events — the full chaos timeline of a run.
struct FaultSchedule {
  std::vector<FaultEvent> events;

  FaultSchedule& Add(FaultEvent event) {
    events.push_back(std::move(event));
    return *this;
  }
  bool empty() const { return events.empty(); }

  /// Time of the last heal (or instantaneous event) in the schedule; 0
  /// when empty. Runs should extend past this to observe recovery.
  sim::Time LastActivity() const;
};

/// Parses a semicolon-separated fault-spec string into a schedule (the
/// sim_cli `--faults=` format). Grammar, times in seconds:
///
///   event  := type '@' start [ '-' end ] ( ':' key '=' value )*
///   type   := latency | loss | partition | crash | restart | throttle |
///             skew | slowdown | pool_clear
///   keys   := nodes=1+2  (or node=1) — target replica-node indexes
///             x=FLOAT    — multiplier / factor (latency, throttle, slowdown)
///             p=FLOAT    — drop probability (loss)
///             ms=FLOAT   — added delay or clock shift, milliseconds
///             in=1       — asymmetric: inbound-only loss
///             client=1   — partition/loss also hits client↔target links
///
/// Example: "partition@120-180:nodes=1+2;crash@200:node=0;restart@300:node=0"
/// Returns false and sets `error` on malformed input.
bool ParseFaultSpec(const std::string& spec, FaultSchedule* out,
                    std::string* error);

/// Generates a seeded random chaos timeline for a cluster of `node_count`
/// replica nodes over [0, horizon): a handful of non-overlapping (per
/// node) degradations plus at most one crash/restart cycle. Clock-skew
/// events only skew backwards (the conservative direction), so the chaos
/// harness freshness invariant stays sound. Identical seeds produce
/// identical schedules.
FaultSchedule MakeRandomSchedule(uint64_t seed, sim::Time horizon,
                                 int node_count);

/// Applies a FaultSchedule to a live cluster: translates each event into
/// the hooks on net::Network, repl::ReplicaSet, and server::ServerNode,
/// scheduling the apply/heal callbacks on the event loop. Keeps a
/// human-readable log that doubles as a determinism trace.
class FaultInjector {
 public:
  /// `client_host` is used by kLatencySpike and by kPartition /
  /// kPacketLoss events with `include_client`; pass -1 when there is no
  /// client host (client-touching events are then skipped on the client
  /// side).
  FaultInjector(sim::EventLoop* loop, net::Network* network,
                repl::ReplicaSet* rs, net::HostId client_host = -1);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every event in `schedule`. May be called once per run.
  void Arm(const FaultSchedule& schedule);

  /// Installs the client-side hook kPoolClear fires through (node index →
  /// clear that node's connection pool). The injector cannot see driver
  /// internals, so the experiment wires this to MongoClient::ClearPool.
  void SetPoolClearHook(std::function<void(int)> hook) {
    pool_clear_hook_ = std::move(hook);
  }

  uint64_t events_applied() const { return events_applied_; }
  uint64_t events_healed() const { return events_healed_; }

  /// One line per applied/healed/skipped event, in simulation order.
  const std::vector<std::string>& log() const { return log_; }

 private:
  void Apply(const FaultEvent& event);
  void Heal(const FaultEvent& event);
  /// Hosts of all replica nodes NOT listed in `event.nodes`.
  std::vector<net::HostId> PeerHosts(const FaultEvent& event) const;
  void LogEvent(const char* action, const FaultEvent& event);

  sim::EventLoop* loop_;
  net::Network* network_;
  repl::ReplicaSet* rs_;
  net::HostId client_host_;
  std::function<void(int)> pool_clear_hook_;
  uint64_t events_applied_ = 0;
  uint64_t events_healed_ = 0;
  std::vector<std::string> log_;
};

}  // namespace dcg::fault

#endif  // DCG_FAULT_FAULT_INJECTOR_H_
