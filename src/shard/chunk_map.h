#ifndef DCG_SHARD_CHUNK_MAP_H_
#define DCG_SHARD_CHUNK_MAP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "doc/value.h"
#include "proto/command.h"

namespace dcg::shard {

/// How documents map to shards: which field carries the shard key, and
/// whether placement follows the key's hash (uniform spread, the default)
/// or its value order (range sharding — locality-preserving, so a
/// monotonically increasing key concentrates load on one chunk, exactly
/// the hot-shard scenario the shared staleness budget is tested under).
struct ShardKeyPattern {
  std::string field = "_id";
  bool hashed = true;
};

/// One contiguous slice of the key space, owned by exactly one shard.
/// Chunk ranges are fixed at map construction; only ownership moves
/// (MoveChunk), which is what bumps the routing-table version.
struct Chunk {
  int64_t id = 0;
  int shard = 0;
  /// Hashed pattern: the chunk covers hashes in [hash_lo, hash_hi]
  /// (inclusive — the top chunk must reach UINT64_MAX).
  uint64_t hash_lo = 0;
  uint64_t hash_hi = 0;
  /// Ranged pattern: keys in [lower, upper); the first chunk has no lower
  /// bound and the last no upper bound.
  bool has_lower = false;
  bool has_upper = false;
  doc::Value lower;
  doc::Value upper;
};

/// The routing table a mongos resolves against: an immutable partition of
/// the shard-key space into chunks, a mutable chunk → shard assignment,
/// and a version that increments on every assignment change. Copyable so
/// ConfigShards can hand out cheap immutable snapshots; a router caching
/// a snapshot learns it is stale only when a shard refuses the version it
/// stamped (kStaleConfig) — MongoDB's lazy routing-table refresh.
class ChunkMap {
 public:
  /// The key hash routing uses for hashed patterns. FNV-1a over the
  /// value's canonical encoding — stable across runs, so hashed placement
  /// is deterministic.
  static uint64_t HashKey(const doc::Value& key);

  /// Hashed pre-split (MongoDB's initial chunks for a hashed key): the
  /// 64-bit hash space divided into shards × chunks_per_shard equal
  /// slices, each shard owning one contiguous block of slices.
  static ChunkMap Hashed(ShardKeyPattern pattern, int shards,
                         int chunks_per_shard);

  /// Ranged split: `split_points` (strictly ascending in doc::Value's
  /// canonical order) cut the key line into split_points.size() + 1
  /// chunks, assigned round-robin across shards.
  static ChunkMap Ranged(ShardKeyPattern pattern,
                         std::vector<doc::Value> split_points, int shards);

  const ShardKeyPattern& pattern() const { return pattern_; }
  uint64_t version() const { return version_; }
  int shard_count() const { return shards_; }
  int chunk_count() const { return static_cast<int>(chunks_.size()); }
  const Chunk& chunk(int64_t id) const {
    return chunks_[static_cast<size_t>(id)];
  }
  const std::vector<Chunk>& chunks() const { return chunks_; }

  /// The chunk covering this shard-key value. Total: every key maps to
  /// exactly one chunk under either pattern.
  int64_t ChunkIdFor(const doc::Value& key) const;
  int ShardFor(const doc::Value& key) const {
    return chunk(ChunkIdFor(key)).shard;
  }

  /// Documents owned by `shard` under this map (chunk count, for balance
  /// summaries).
  int ChunksOwnedBy(int shard) const;

  /// Reassigns a chunk and bumps the version. Routers still holding the
  /// old version get kStaleConfig from every shard until they refresh.
  void MoveChunk(int64_t chunk_id, int to_shard);

 private:
  ShardKeyPattern pattern_;
  int shards_ = 1;
  uint64_t version_ = 1;
  std::vector<Chunk> chunks_;
  /// Ranged pattern: chunks_[i] covers [splits_[i-1], splits_[i]).
  std::vector<doc::Value> splits_;
};

/// The config-server role, collapsed to its essence: the single authority
/// for the routing table. Routers cache Snapshot()s and refresh on
/// kStaleConfig; shards validate every versioned command against the
/// authoritative assignment via Admit — *before* any body runs, so a
/// stale-routed write applies nothing and a post-refresh re-route cannot
/// duplicate it.
class ConfigShards {
 public:
  explicit ConfigShards(ChunkMap initial)
      : current_(std::make_shared<const ChunkMap>(std::move(initial))) {}

  ConfigShards(const ConfigShards&) = delete;
  ConfigShards& operator=(const ConfigShards&) = delete;

  /// The current routing table, immutable. Cheap: shared ownership of the
  /// same snapshot until the next MoveChunk replaces it.
  std::shared_ptr<const ChunkMap> Snapshot() const { return current_; }

  uint64_t version() const { return current_->version(); }

  /// Reassigns a chunk (metadata only — ShardedCluster::MoveChunk pairs
  /// this with the document migration).
  void MoveChunk(int64_t chunk_id, int to_shard);

  /// Admission verdict for a command arriving at `shard`: unversioned
  /// traffic (shard_version == 0 — scatter sub-reads, per-shard probes,
  /// internal ops) always passes; versioned traffic passes only when the
  /// stamped version is current *and* the named chunk is owned by the
  /// serving shard.
  bool Admit(const proto::RouteInfo& route, int shard);

  /// Commands refused for a stale version or a moved chunk.
  uint64_t stale_refusals() const { return stale_refusals_; }

 private:
  std::shared_ptr<const ChunkMap> current_;
  uint64_t stale_refusals_ = 0;
};

}  // namespace dcg::shard

#endif  // DCG_SHARD_CHUNK_MAP_H_
