#ifndef DCG_SHARD_ROUTER_H_
#define DCG_SHARD_ROUTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/read_balancer.h"
#include "core/routing_policy.h"
#include "core/shared_state.h"
#include "core/staleness_budget.h"
#include "driver/client.h"
#include "net/network.h"
#include "obs/trace.h"
#include "proto/command.h"
#include "shard/chunk_map.h"
#include "sim/event_loop.h"
#include "sim/random.h"

namespace dcg::shard {

/// Router knobs (everything below the client→router wire).
struct RouterConfig {
  /// Driver options for the per-shard sub-clients the router fans out
  /// through (pools, retries, batching — the full driver stack applies to
  /// the router→shard leg too).
  driver::ClientOptions shard_client_options;
  core::BalancerConfig balancer;
  /// When true, every shard gets its own Read Balancer joined to one
  /// shared StalenessBudget; when false, sub-reads use `fixed_pref`.
  bool run_balancers = true;
  driver::ReadPreference fixed_pref = driver::ReadPreference::kPrimary;
  /// allowPartialResults: a scatter find with a deadline answers this
  /// far *before* it with whatever shards have replied, so the partial
  /// reply still beats the client's maxTimeMS across the return wire.
  sim::Duration partial_results_margin = sim::Millis(2);
};

/// The mongos role as a first-class proto::CommandService peer: the
/// router owns its own CommandBus, registers itself at a router host, and
/// answers the full command vocabulary — so a stock driver::MongoClient
/// dials it exactly like a 1-node replica set (hello says "primary"),
/// and every client-side mechanism (maxTimeMS, retry budgets, pools,
/// hedging, envelopes, spans) applies unchanged to the client→router leg.
///
/// Inside, each routed command fans out through per-shard MongoClients:
///   - point ops (route.has_key) resolve shard ownership against a cached
///     ChunkMap snapshot, stamp chunk + version on the sub-op, and — on a
///     kStaleConfig refusal — refresh from ConfigShards and re-route
///     (MongoDB's lazy routing-table refresh);
///   - structured finds without a key scatter to every shard and merge by
///     sort key, answering at the slowest shard (or earlier, partial,
///     when the spec allows it and the deadline looms);
///   - each shard's Read Preference is decided by that shard's own
///     policy/balancer, and all balancers share one StalenessBudget, so
///     the single client-wide StaleBound holds across the whole cluster.
///
/// The router itself has no CPU model (a mongos is I/O-bound routing, not
/// query execution); its cost is the extra wire hop plus the sub-op legs.
class Router {
 public:
  Router(sim::EventLoop* loop, sim::Rng rng, net::Network* network,
         net::HostId host, ConfigShards* config_shards,
         std::vector<proto::CommandBus*> shard_buses, RouterConfig config);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// The bus top-level clients dial. Its single registered host (the
  /// router) is the whole seed list — the cluster looks like one node.
  proto::CommandBus* bus() { return &bus_; }

  net::HostId host() const { return host_; }

  /// Starts the per-shard sub-clients and balancers. The shards' replica
  /// sets start separately (ShardedCluster owns them).
  void Start();

  /// Attaches the run's tracer: the router records one kRouter span per
  /// routed command (arrival → merged reply send), and threads the client
  /// op's trace id + that span into every sub-op, so client→router→shard
  /// legs link into one tree. Forwarded to the sub-clients too.
  void SetTracer(obs::Tracer* tracer);

  int shard_count() const { return static_cast<int>(clients_.size()); }
  driver::MongoClient& shard_client(int s) { return *clients_[s]; }
  core::SharedState& shared_state(int s) { return *states_[s]; }
  core::RoutingPolicy& policy(int s) { return *policies_[s]; }
  /// Null when run_balancers is false.
  core::ReadBalancer* balancer(int s) { return balancers_[s].get(); }
  /// The shared staleness budget every shard balancer reports into.
  core::StalenessBudget& budget() { return *budget_; }

  /// Routing table snapshot the router currently resolves against (may
  /// trail ConfigShards until a kStaleConfig forces a refresh).
  const ChunkMap& routing_table() const { return *cache_; }

  uint64_t commands_served() const { return commands_served_; }
  uint64_t routed_reads() const { return routed_reads_; }
  uint64_t routed_writes() const { return routed_writes_; }
  uint64_t scatter_finds() const { return scatter_finds_; }
  /// Times a kStaleConfig refusal made the router refresh its snapshot
  /// and re-route the op.
  uint64_t stale_refreshes() const { return stale_refreshes_; }
  /// Scatter finds answered without every shard (allowPartialResults).
  uint64_t partial_replies() const { return partial_replies_; }
  /// Point ops dispatched to each shard (routing balance, for tests and
  /// per-shard summaries).
  uint64_t routed_to_shard(int s) const { return routed_to_shard_[s]; }

 private:
  /// One client command in flight through the router, alive until the
  /// merged reply is sent (or the client's deadline makes silence the
  /// right answer).
  struct RoutedOp {
    proto::Command cmd;
    sim::Time arrived = 0;
    uint64_t router_span = 0;
    /// Routing attempts consumed (first dispatch + stale re-routes).
    int route_attempts = 0;
  };

  /// Scatter-gather rendezvous for one find fanned to every shard.
  struct Gather {
    std::shared_ptr<RoutedOp> op;
    std::vector<std::shared_ptr<const proto::FindResult>> parts;
    int answered = 0;
    bool replied = false;
    sim::EventId partial_timer = 0;
  };

  void Handle(proto::Command command);
  void HandleEnvelope(proto::Envelope envelope);
  /// Single-shard dispatch for keyed ops; re-entered after a stale-config
  /// refresh with the same RoutedOp (same router span, same client op).
  void DispatchPoint(const std::shared_ptr<RoutedOp>& op);
  void OnPointRead(const std::shared_ptr<RoutedOp>& op,
                   const driver::MongoClient::ReadResult& result);
  void OnPointWrite(const std::shared_ptr<RoutedOp>& op,
                    const driver::MongoClient::WriteResult& result);
  /// Refreshes the cached routing table from ConfigShards and re-routes.
  void RefreshAndRetry(const std::shared_ptr<RoutedOp>& op);
  void ScatterFind(const std::shared_ptr<RoutedOp>& op);
  void FinishScatter(const std::shared_ptr<Gather>& gather, bool partial);
  /// Sub-op options shared by every dispatch: remaining client deadline,
  /// trace threading. False when the client's deadline already passed —
  /// the op is dead, silence lets the client's own timer speak.
  bool MakeSubOptions(const RoutedOp& op, driver::OpOptions* opts) const;
  driver::ReadPreference ChoosePreference(int shard);
  /// Sends the reply wire message back to the issuing client, with the
  /// router's hello piggybacked like any CommandService, and closes the
  /// op's kRouter span.
  void Reply(const RoutedOp& op, proto::Reply reply);
  proto::HelloReply MakeHello() const;
  bool tracing() const { return tracer_ != nullptr && tracer_->enabled(); }

  sim::EventLoop* loop_;
  sim::Rng rng_;
  net::Network* network_;
  net::HostId host_;
  ConfigShards* config_shards_;
  RouterConfig config_;
  proto::CommandBus bus_;
  std::shared_ptr<const ChunkMap> cache_;
  obs::Tracer* tracer_ = nullptr;

  std::vector<std::unique_ptr<driver::MongoClient>> clients_;
  std::vector<std::unique_ptr<core::SharedState>> states_;
  std::vector<std::unique_ptr<core::RoutingPolicy>> policies_;
  std::vector<std::unique_ptr<core::ReadBalancer>> balancers_;
  std::unique_ptr<core::StalenessBudget> budget_;

  uint64_t commands_served_ = 0;
  uint64_t routed_reads_ = 0;
  uint64_t routed_writes_ = 0;
  uint64_t scatter_finds_ = 0;
  uint64_t stale_refreshes_ = 0;
  uint64_t partial_replies_ = 0;
  std::vector<uint64_t> routed_to_shard_;
};

}  // namespace dcg::shard

#endif  // DCG_SHARD_ROUTER_H_
