#include "shard/sharded_cluster.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace dcg::shard {
namespace {

uint64_t HashId(const doc::Value& id) {
  const std::string encoded = id.ToJson();
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : encoded) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

ShardedCluster::ShardedCluster(sim::EventLoop* loop, sim::Rng rng,
                               net::Network* network,
                               net::HostId client_host,
                               ShardedClusterConfig config)
    : loop_(loop), rng_(std::move(rng)), config_(std::move(config)) {
  DCG_CHECK(config_.shards >= 1);
  const int nodes = config_.repl.secondaries + 1;
  DCG_CHECK(static_cast<int>(config_.client_node_rtt.size()) >= nodes);
  for (int s = 0; s < config_.shards; ++s) {
    std::vector<net::HostId> hosts;
    for (int i = 0; i < nodes; ++i) {
      hosts.push_back(network->AddHost("shard" + std::to_string(s) + "-node" +
                                       std::to_string(i)));
      network->SetLink(client_host, hosts[i], config_.client_node_rtt[i],
                       config_.rtt_jitter);
    }
    for (int i = 0; i < nodes; ++i) {
      for (int j = i + 1; j < nodes; ++j) {
        network->SetLink(hosts[i], hosts[j], config_.inter_node_rtt,
                         config_.rtt_jitter);
      }
    }
    shards_.push_back(std::make_unique<repl::ReplicaSet>(
        loop_, rng_.Fork(), network, config_.repl, config_.server, hosts));
    clients_.push_back(std::make_unique<driver::MongoClient>(
        loop_, rng_.Fork(), shards_.back()->command_bus(), client_host,
        config_.client_options));
    states_.push_back(
        std::make_unique<core::SharedState>(config_.balancer.low_bal));
    if (config_.run_balancers) {
      policies_.push_back(
          std::make_unique<core::DecongestantPolicy>(states_.back().get()));
      balancers_.push_back(std::make_unique<core::ReadBalancer>(
          clients_.back().get(), states_.back().get(), config_.balancer,
          rng_.Fork()));
    } else {
      policies_.push_back(
          std::make_unique<core::FixedPolicy>(config_.fixed_pref));
      balancers_.push_back(nullptr);
    }
  }
}

ShardedCluster::~ShardedCluster() = default;

void ShardedCluster::Start() {
  for (auto& shard : shards_) shard->Start();
  for (auto& client : clients_) client->Start();
  for (auto& balancer : balancers_) {
    if (balancer != nullptr) balancer->Start();
  }
}

int ShardedCluster::ShardFor(const doc::Value& id) const {
  return static_cast<int>(HashId(id) % static_cast<uint64_t>(shard_count()));
}

void ShardedCluster::ReadDoc(
    const std::string& collection, const doc::Value& id,
    server::OpClass op_class, proto::ReadBody body,
    std::function<void(const driver::MongoClient::ReadResult&)> done) {
  (void)collection;  // the body addresses the collection itself
  const int s = ShardFor(id);
  const driver::ReadPreference pref = policies_[s]->ChooseReadPreference(&rng_);
  // Latency feedback reaches the shard's balancer through its client's op
  // observer — the router no longer reports completions by hand.
  clients_[s]->Read(pref, op_class, std::move(body),
                    [done = std::move(done)](
                        const driver::MongoClient::ReadResult& result) {
                      if (done) done(result);
                    });
}

void ShardedCluster::InsertDoc(
    const std::string& collection, doc::Value document,
    std::function<void(const driver::MongoClient::WriteResult&)> done) {
  const doc::Value* id = document.Find("_id");
  DCG_CHECK(id != nullptr);
  const int s = ShardFor(*id);
  clients_[s]->Write(
      server::OpClass::kInsert,
      [collection, document = std::move(document)](repl::TxnContext* ctx) {
        ctx->Insert(collection, document);
      },
      std::move(done));
}

void ShardedCluster::UpdateDoc(
    const std::string& collection, const doc::Value& id,
    const doc::UpdateSpec& spec,
    std::function<void(const driver::MongoClient::WriteResult&)> done) {
  const int s = ShardFor(id);
  clients_[s]->Write(
      server::OpClass::kUpdate,
      [collection, id, spec](repl::TxnContext* ctx) {
        const bool ok = ctx->Update(collection, id, spec);
        DCG_CHECK_MSG(ok, "sharded update of missing document");
      },
      std::move(done));
}

void ShardedCluster::ScatterCount(
    const std::string& collection, const doc::Filter& filter,
    server::OpClass op_class,
    std::function<void(size_t, sim::Duration)> done) {
  struct Gather {
    size_t total = 0;
    sim::Duration slowest = 0;
    int remaining = 0;
  };
  auto gather = std::make_shared<Gather>();
  gather->remaining = shard_count();
  for (int s = 0; s < shard_count(); ++s) {
    const driver::ReadPreference pref =
        policies_[s]->ChooseReadPreference(&rng_);
    auto shard_count_value = std::make_shared<size_t>(0);
    clients_[s]->Read(
        pref, op_class,
        [collection, filter, shard_count_value](const store::Database& db) {
          const store::Collection* coll = db.Get(collection);
          if (coll != nullptr) *shard_count_value = coll->Count(filter);
        },
        [gather, shard_count_value, done](
            const driver::MongoClient::ReadResult& result) {
          gather->total += *shard_count_value;
          gather->slowest = std::max(gather->slowest, result.latency);
          if (--gather->remaining == 0 && done) {
            done(gather->total, gather->slowest);
          }
        });
  }
}

}  // namespace dcg::shard
