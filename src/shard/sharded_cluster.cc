#include "shard/sharded_cluster.h"

#include <utility>

#include "util/check.h"

namespace dcg::shard {

ShardedCluster::ShardedCluster(sim::EventLoop* loop, sim::Rng rng,
                               net::Network* network,
                               net::HostId client_host,
                               ShardedClusterConfig config)
    : loop_(loop), rng_(std::move(rng)), config_(std::move(config)) {
  DCG_CHECK(config_.shards >= 1);
  const int nodes = config_.repl.secondaries + 1;
  DCG_CHECK(static_cast<int>(config_.client_node_rtt.size()) >= nodes);
  // The mongos tier: one router host between the application client and
  // the shards. The client dials only the router; the router's per-shard
  // sub-clients dial the shard nodes.
  const net::HostId router_host = network->AddHost("mongos");
  network->SetLink(client_host, router_host, config_.client_router_rtt,
                   config_.rtt_jitter);
  std::vector<proto::CommandBus*> buses;
  for (int s = 0; s < config_.shards; ++s) {
    std::vector<net::HostId> hosts;
    for (int i = 0; i < nodes; ++i) {
      hosts.push_back(network->AddHost("shard" + std::to_string(s) + "-node" +
                                       std::to_string(i)));
      network->SetLink(router_host, hosts[i], config_.client_node_rtt[i],
                       config_.rtt_jitter);
    }
    for (int i = 0; i < nodes; ++i) {
      for (int j = i + 1; j < nodes; ++j) {
        network->SetLink(hosts[i], hosts[j], config_.inter_node_rtt,
                         config_.rtt_jitter);
      }
    }
    shards_.push_back(std::make_unique<repl::ReplicaSet>(
        loop_, rng_.Fork(), network, config_.repl, config_.server, hosts));
    buses.push_back(shards_.back()->command_bus());
  }
  ChunkMap initial =
      config_.shard_key.hashed
          ? ChunkMap::Hashed(config_.shard_key, config_.shards,
                             config_.chunks_per_shard)
          : ChunkMap::Ranged(config_.shard_key, config_.split_points,
                             config_.shards);
  config_shards_ = std::make_unique<ConfigShards>(std::move(initial));
  // Every shard validates versioned commands against the authoritative
  // assignment — before any body runs, so stale-routed writes apply
  // nothing and a post-refresh re-route cannot duplicate them.
  for (int s = 0; s < config_.shards; ++s) {
    shards_[s]->SetAdmissionCheck(
        [authority = config_shards_.get(), s](const proto::Command& command) {
          return authority->Admit(command.route, s);
        });
  }
  RouterConfig router_config;
  router_config.shard_client_options = config_.client_options;
  router_config.balancer = config_.balancer;
  router_config.run_balancers = config_.run_balancers;
  router_config.fixed_pref = config_.fixed_pref;
  router_config.partial_results_margin = config_.partial_results_margin;
  router_ = std::make_unique<Router>(loop_, rng_.Fork(), network, router_host,
                                     config_shards_.get(), std::move(buses),
                                     std::move(router_config));
  // The application's driver: a stock MongoClient whose whole topology is
  // the router. Read Preference at this leg is kPrimary (the router is
  // always "primary"); the real routing decision happens per shard.
  top_client_ = std::make_unique<driver::MongoClient>(
      loop_, rng_.Fork(), router_->bus(), client_host, config_.client_options);
}

ShardedCluster::~ShardedCluster() = default;

void ShardedCluster::Start() {
  for (auto& shard : shards_) shard->Start();
  router_->Start();
  top_client_->Start();
}

void ShardedCluster::SetTracer(obs::Tracer* tracer) {
  for (auto& shard : shards_) shard->SetTracer(tracer);
  router_->SetTracer(tracer);
  top_client_->SetTracer(tracer);
}

int ShardedCluster::ShardFor(const doc::Value& key) const {
  return config_shards_->Snapshot()->ShardFor(key);
}

void ShardedCluster::ReadDoc(
    const std::string& collection, const doc::Value& id,
    server::OpClass op_class, proto::ReadBody body,
    std::function<void(const driver::MongoClient::ReadResult&)> done) {
  driver::OpOptions opts;
  opts.route.collection = collection;
  opts.route.has_key = true;
  opts.route.key = id;
  top_client_->Read(driver::ReadPreference::kPrimary, op_class,
                    std::move(body),
                    [done = std::move(done)](
                        const driver::MongoClient::ReadResult& result) {
                      if (done) done(result);
                    },
                    std::move(opts));
}

void ShardedCluster::InsertDoc(
    const std::string& collection, doc::Value document,
    std::function<void(const driver::MongoClient::WriteResult&)> done) {
  const doc::Value* id = document.Find("_id");
  DCG_CHECK(id != nullptr);
  const doc::Value* key = document.FindPath(config_.shard_key.field);
  driver::OpOptions opts;
  opts.route.collection = collection;
  opts.route.has_key = true;
  opts.route.key = key != nullptr ? *key : *id;
  top_client_->Write(
      server::OpClass::kInsert,
      [collection, document = std::move(document)](repl::TxnContext* ctx) {
        ctx->Insert(collection, document);
      },
      std::move(done), repl::WriteConcern::kW1, std::move(opts));
}

void ShardedCluster::UpdateDoc(
    const std::string& collection, const doc::Value& id,
    const doc::UpdateSpec& spec,
    std::function<void(const driver::MongoClient::WriteResult&)> done) {
  driver::OpOptions opts;
  opts.route.collection = collection;
  opts.route.has_key = true;
  opts.route.key = id;
  top_client_->Write(
      server::OpClass::kUpdate,
      [collection, id, spec](repl::TxnContext* ctx) {
        const bool ok = ctx->Update(collection, id, spec);
        DCG_CHECK_MSG(ok, "sharded update of missing document");
      },
      std::move(done), repl::WriteConcern::kW1, std::move(opts));
}

void ShardedCluster::ScatterCount(
    const std::string& collection, const doc::Filter& filter,
    server::OpClass op_class,
    std::function<void(size_t, sim::Duration)> done) {
  auto spec = std::make_shared<proto::FindSpec>();
  spec->collection = collection;
  spec->filter = filter;
  spec->count_only = true;
  top_client_->Find(
      driver::ReadPreference::kPrimary, op_class, std::move(spec),
      [done = std::move(done)](const driver::MongoClient::ReadResult& result) {
        if (!done) return;
        done(result.find != nullptr ? result.find->count : 0, result.latency);
      });
}

void ShardedCluster::ScatterFind(
    std::shared_ptr<const proto::FindSpec> spec, server::OpClass op_class,
    std::function<void(const driver::MongoClient::ReadResult&)> done,
    driver::OpOptions opts) {
  top_client_->Find(driver::ReadPreference::kPrimary, op_class,
                    std::move(spec), std::move(done), std::move(opts));
}

void ShardedCluster::MoveChunk(const std::string& collection,
                               int64_t chunk_id, int to_shard) {
  const auto before = config_shards_->Snapshot();
  const int from_shard = before->chunk(chunk_id).shard;
  // Metadata first: the version bump makes every router holding the old
  // snapshot bounce (kStaleConfig) until it refreshes, closing the window
  // where a re-routed write could land on the donor.
  config_shards_->MoveChunk(chunk_id, to_shard);
  // Then the documents, instantaneously and replication-free on every
  // node of both shards — the migration's committed end state. (A real
  // balancer streams then commits; ops racing the critical section behave
  // the same either way: admitted-and-queued donor ops still run there.)
  std::vector<doc::Value> moving;
  repl::ReplicaSet& donor = *shards_[from_shard];
  const store::Database& donor_db = donor.node(donor.primary_index()).db();
  const store::Collection* donor_coll = donor_db.Get(collection);
  if (donor_coll != nullptr) {
    donor_coll->ForEach([&](const doc::Value& id, const store::DocPtr& d) {
      const doc::Value* key = d->FindPath(config_.shard_key.field);
      const doc::Value key_value = key != nullptr ? *key : id;
      if (before->ChunkIdFor(key_value) == chunk_id) {
        moving.push_back(*d);
      }
      return true;
    });
  }
  repl::ReplicaSet& recipient = *shards_[to_shard];
  for (int n = 0; n < recipient.node_count(); ++n) {
    store::Collection& dest = recipient.node(n).db().GetOrCreate(collection);
    for (const doc::Value& d : moving) dest.Upsert(d);
  }
  for (int n = 0; n < donor.node_count(); ++n) {
    store::Collection* source = donor.node(n).db().Get(collection);
    if (source == nullptr) continue;
    for (const doc::Value& d : moving) source->Remove(*d.Find("_id"));
  }
}

}  // namespace dcg::shard
