#include "shard/chunk_map.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace dcg::shard {

uint64_t ChunkMap::HashKey(const doc::Value& key) {
  const std::string encoded = key.ToJson();
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : encoded) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  // Chunk ranges slice the *high* bits of the hash line, and raw FNV-1a
  // barely stirs them for short keys (the final byte only reaches ~40
  // bits up) — finalize with a full-avalanche mix so consecutive ids
  // spread evenly across chunks.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

ChunkMap ChunkMap::Hashed(ShardKeyPattern pattern, int shards,
                          int chunks_per_shard) {
  DCG_CHECK(pattern.hashed);
  DCG_CHECK(shards >= 1);
  DCG_CHECK(chunks_per_shard >= 1);
  ChunkMap map;
  map.pattern_ = std::move(pattern);
  map.shards_ = shards;
  const int total = shards * chunks_per_shard;
  // Equal slices of the 64-bit hash line via 128-bit arithmetic, so the
  // boundaries are exact for any chunk count (no truncated division).
  const auto boundary = [total](int i) -> uint64_t {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(i) << 64) /
        static_cast<unsigned __int128>(total));
  };
  for (int i = 0; i < total; ++i) {
    Chunk c;
    c.id = i;
    c.shard = i / chunks_per_shard;  // contiguous block per shard
    c.hash_lo = boundary(i);
    c.hash_hi = i + 1 == total ? UINT64_MAX : boundary(i + 1) - 1;
    map.chunks_.push_back(std::move(c));
  }
  return map;
}

ChunkMap ChunkMap::Ranged(ShardKeyPattern pattern,
                          std::vector<doc::Value> split_points, int shards) {
  DCG_CHECK(!pattern.hashed);
  DCG_CHECK(shards >= 1);
  for (size_t i = 1; i < split_points.size(); ++i) {
    DCG_CHECK_MSG(split_points[i - 1] < split_points[i],
                  "ranged split points must be strictly ascending");
  }
  ChunkMap map;
  map.pattern_ = std::move(pattern);
  map.shards_ = shards;
  const int total = static_cast<int>(split_points.size()) + 1;
  for (int i = 0; i < total; ++i) {
    Chunk c;
    c.id = i;
    c.shard = i % shards;  // round-robin: adjacent ranges on distinct shards
    if (i > 0) {
      c.has_lower = true;
      c.lower = split_points[static_cast<size_t>(i - 1)];
    }
    if (i + 1 < total) {
      c.has_upper = true;
      c.upper = split_points[static_cast<size_t>(i)];
    }
    map.chunks_.push_back(std::move(c));
  }
  map.splits_ = std::move(split_points);
  return map;
}

int64_t ChunkMap::ChunkIdFor(const doc::Value& key) const {
  if (pattern_.hashed) {
    const uint64_t h = HashKey(key);
    // Inverse of the exact-boundary slicing: chunk index = h * total / 2^64.
    const auto total = static_cast<unsigned __int128>(chunks_.size());
    auto idx = static_cast<int64_t>(
        (static_cast<unsigned __int128>(h) * total) >> 64);
    // Boundary rounding can land one off; nudge into the covering range.
    while (h < chunks_[static_cast<size_t>(idx)].hash_lo) --idx;
    while (h > chunks_[static_cast<size_t>(idx)].hash_hi) ++idx;
    return idx;
  }
  // First split point strictly greater than the key: the key lives in the
  // chunk just below it.
  const auto it = std::upper_bound(splits_.begin(), splits_.end(), key);
  return static_cast<int64_t>(it - splits_.begin());
}

int ChunkMap::ChunksOwnedBy(int shard) const {
  int owned = 0;
  for (const Chunk& c : chunks_) {
    if (c.shard == shard) ++owned;
  }
  return owned;
}

void ChunkMap::MoveChunk(int64_t chunk_id, int to_shard) {
  DCG_CHECK(chunk_id >= 0 && chunk_id < chunk_count());
  DCG_CHECK(to_shard >= 0 && to_shard < shards_);
  Chunk& c = chunks_[static_cast<size_t>(chunk_id)];
  DCG_CHECK_MSG(c.shard != to_shard, "chunk already lives on that shard");
  c.shard = to_shard;
  ++version_;
}

void ConfigShards::MoveChunk(int64_t chunk_id, int to_shard) {
  auto next = std::make_shared<ChunkMap>(*current_);
  next->MoveChunk(chunk_id, to_shard);
  current_ = std::move(next);
}

bool ConfigShards::Admit(const proto::RouteInfo& route, int shard) {
  if (route.shard_version == 0) return true;
  const bool current = route.shard_version == current_->version();
  const bool owned =
      route.chunk_id >= 0 && route.chunk_id < current_->chunk_count() &&
      current_->chunk(route.chunk_id).shard == shard;
  if (current && owned) return true;
  ++stale_refusals_;
  return false;
}

}  // namespace dcg::shard
