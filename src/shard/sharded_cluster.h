#ifndef DCG_SHARD_SHARDED_CLUSTER_H_
#define DCG_SHARD_SHARDED_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/read_balancer.h"
#include "core/routing_policy.h"
#include "core/shared_state.h"
#include "driver/client.h"
#include "net/network.h"
#include "repl/replica_set.h"

namespace dcg::shard {

/// Configuration of a sharded deployment: N shards, each a replica set
/// with the usual knobs, plus an optional per-shard Decongestant.
struct ShardedClusterConfig {
  int shards = 2;
  repl::ReplicaSetParams repl;
  server::ServerParams server;
  driver::ClientOptions client_options;
  core::BalancerConfig balancer;
  /// When true, every shard gets its own Read Balancer and reads route
  /// through its Decongestant policy; when false, reads use `fixed_pref`.
  bool run_balancers = true;
  driver::ReadPreference fixed_pref = driver::ReadPreference::kPrimary;
  /// Client-to-node base RTTs within each shard (primary first).
  std::vector<sim::Duration> client_node_rtt = {
      sim::Millis(0.4), sim::Millis(1.2), sim::Millis(1.6)};
  sim::Duration inter_node_rtt = sim::Millis(1.0);
  sim::Duration rtt_jitter = sim::Micros(40);
};

/// A MongoDB-style sharded cluster (§2.1): documents hash-partition by
/// _id across shards, each shard is an independent replica set, and the
/// router (the mongos role, folded into this class) forwards each
/// operation to the owning shard — where the Read Preference decision is
/// made *per shard* by that shard's own Read Balancer. This is the
/// "techniques apply to sharded clusters" claim of the paper, made
/// concrete: congestion is detected and relieved shard by shard.
class ShardedCluster {
 public:
  ShardedCluster(sim::EventLoop* loop, sim::Rng rng, net::Network* network,
                 net::HostId client_host, ShardedClusterConfig config);
  ~ShardedCluster();

  ShardedCluster(const ShardedCluster&) = delete;
  ShardedCluster& operator=(const ShardedCluster&) = delete;

  /// Starts every shard's replication, drivers, and balancers.
  void Start();

  int shard_count() const { return static_cast<int>(shards_.size()); }

  /// The shard owning documents with this _id (hash sharding).
  int ShardFor(const doc::Value& id) const;

  repl::ReplicaSet& shard(int i) { return *shards_[i]; }
  driver::MongoClient& client(int i) { return *clients_[i]; }
  core::SharedState& shared_state(int i) { return *states_[i]; }
  /// Null when run_balancers is false.
  core::ReadBalancer* balancer(int i) { return balancers_[i].get(); }
  core::RoutingPolicy& policy(int i) { return *policies_[i]; }

  /// Routed point read: picks the owning shard and asks that shard's
  /// policy for a Read Preference; the shard's balancer sees the latency
  /// through its client's op observer.
  void ReadDoc(const std::string& collection, const doc::Value& id,
               server::OpClass op_class, proto::ReadBody body,
               std::function<void(const driver::MongoClient::ReadResult&)>
                   done);

  /// Routed insert (single-shard write transaction).
  void InsertDoc(const std::string& collection, doc::Value document,
                 std::function<void(const driver::MongoClient::WriteResult&)>
                     done);

  /// Routed update by _id.
  void UpdateDoc(const std::string& collection, const doc::Value& id,
                 const doc::UpdateSpec& spec,
                 std::function<void(const driver::MongoClient::WriteResult&)>
                     done);

  /// Scatter-gather count: evaluates the filter on every shard (each via
  /// its own policy-chosen node) and sums the results. `done(total,
  /// latency)` fires when the slowest shard answers — mongos semantics.
  void ScatterCount(const std::string& collection, const doc::Filter& filter,
                    server::OpClass op_class,
                    std::function<void(size_t total, sim::Duration latency)>
                        done);

 private:
  sim::EventLoop* loop_;
  sim::Rng rng_;
  ShardedClusterConfig config_;
  std::vector<std::unique_ptr<repl::ReplicaSet>> shards_;
  std::vector<std::unique_ptr<driver::MongoClient>> clients_;
  std::vector<std::unique_ptr<core::SharedState>> states_;
  std::vector<std::unique_ptr<core::RoutingPolicy>> policies_;
  std::vector<std::unique_ptr<core::ReadBalancer>> balancers_;
};

}  // namespace dcg::shard

#endif  // DCG_SHARD_SHARDED_CLUSTER_H_
