#ifndef DCG_SHARD_SHARDED_CLUSTER_H_
#define DCG_SHARD_SHARDED_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/read_balancer.h"
#include "core/routing_policy.h"
#include "core/shared_state.h"
#include "core/staleness_budget.h"
#include "driver/client.h"
#include "net/network.h"
#include "obs/trace.h"
#include "repl/replica_set.h"
#include "shard/chunk_map.h"
#include "shard/router.h"

namespace dcg::shard {

/// Configuration of a sharded deployment: N shards, each a replica set
/// with the usual knobs, fronted by a bus-routed mongos (shard::Router)
/// with a versioned chunk map and one shared staleness budget.
struct ShardedClusterConfig {
  int shards = 2;
  /// How documents place onto shards: hashed _id by default. Set
  /// shard_key.hashed = false and provide `split_points` for range
  /// sharding (locality-preserving — the hot-shard scenario).
  ShardKeyPattern shard_key;
  /// Hashed pattern: chunks pre-split per shard (MongoDB's initial
  /// chunks). More chunks = finer-grained MoveChunk rebalancing.
  int chunks_per_shard = 4;
  /// Ranged pattern: strictly ascending split points cutting the key
  /// line into split_points.size() + 1 chunks, round-robin across shards.
  std::vector<doc::Value> split_points;
  repl::ReplicaSetParams repl;
  server::ServerParams server;
  /// Driver options for BOTH legs: the application's client→router
  /// connection and the router's per-shard sub-clients.
  driver::ClientOptions client_options;
  core::BalancerConfig balancer;
  /// When true, every shard gets its own Read Balancer (joined to the
  /// shared StalenessBudget) and sub-reads route through its Decongestant
  /// policy; when false, sub-reads use `fixed_pref`.
  bool run_balancers = true;
  driver::ReadPreference fixed_pref = driver::ReadPreference::kPrimary;
  /// Router-to-node base RTTs within each shard (primary first) — the
  /// mongos sits near the data, like a co-located mongos tier.
  std::vector<sim::Duration> client_node_rtt = {
      sim::Millis(0.4), sim::Millis(1.2), sim::Millis(1.6)};
  /// Application-client-to-router base RTT (the extra hop sharding buys).
  sim::Duration client_router_rtt = sim::Millis(0.3);
  sim::Duration inter_node_rtt = sim::Millis(1.0);
  sim::Duration rtt_jitter = sim::Micros(40);
  /// allowPartialResults margin (see RouterConfig).
  sim::Duration partial_results_margin = sim::Millis(2);
};

/// A MongoDB-style sharded cluster (§2.1), assembled from first-class
/// parts: N replica-set shards, a ConfigShards routing authority, a
/// shard::Router registered on its own CommandBus at a mongos host, and
/// one top-level driver::MongoClient that dials the router exactly like a
/// 1-node replica set. Every shard's CommandServices carry an admission
/// check against the authoritative chunk assignment, so stale-routed
/// commands bounce with kStaleConfig before any body runs and the router
/// refreshes + re-routes — MongoDB's lazy routing-table protocol.
///
/// This is the "techniques apply to sharded clusters" claim of the paper,
/// made concrete: congestion is detected and relieved shard by shard by
/// per-shard Read Balancers, while the shared StalenessBudget keeps the
/// *client-wide* worst served staleness under the single StaleBound.
class ShardedCluster {
 public:
  ShardedCluster(sim::EventLoop* loop, sim::Rng rng, net::Network* network,
                 net::HostId client_host, ShardedClusterConfig config);
  ~ShardedCluster();

  ShardedCluster(const ShardedCluster&) = delete;
  ShardedCluster& operator=(const ShardedCluster&) = delete;

  /// Starts every shard's replication, the router (sub-clients +
  /// balancers), and the top-level client's topology monitoring.
  void Start();

  int shard_count() const { return static_cast<int>(shards_.size()); }

  /// The shard currently owning documents with this shard-key value
  /// (resolved against the authoritative table, not the router's cache).
  int ShardFor(const doc::Value& key) const;

  repl::ReplicaSet& shard(int i) { return *shards_[i]; }
  /// The router's per-shard sub-client (the balancer's latency feed).
  driver::MongoClient& client(int i) { return router_->shard_client(i); }
  core::SharedState& shared_state(int i) { return router_->shared_state(i); }
  /// Null when run_balancers is false.
  core::ReadBalancer* balancer(int i) { return router_->balancer(i); }
  core::RoutingPolicy& policy(int i) { return router_->policy(i); }

  /// The mongos. Tests reach routing counters and the budget through it.
  Router& router() { return *router_; }
  /// The application's driver connection to the router.
  driver::MongoClient& top_client() { return *top_client_; }
  /// The routing-table authority (versions, admission refusals).
  ConfigShards& config_shards() { return *config_shards_; }
  /// The shared client-wide staleness budget.
  core::StalenessBudget& budget() { return router_->budget(); }

  /// Attaches the run's span tracer everywhere: shard services, the
  /// router (kRouter spans + sub-clients), and the top-level client.
  void SetTracer(obs::Tracer* tracer);

  /// Routed point read: the client stamps collection + key, the router
  /// resolves the owning shard and asks that shard's policy for a Read
  /// Preference; the shard's balancer sees the latency through its
  /// sub-client's op observer.
  void ReadDoc(const std::string& collection, const doc::Value& id,
               server::OpClass op_class, proto::ReadBody body,
               std::function<void(const driver::MongoClient::ReadResult&)>
                   done);

  /// Routed insert (single-shard write transaction).
  void InsertDoc(const std::string& collection, doc::Value document,
                 std::function<void(const driver::MongoClient::WriteResult&)>
                     done);

  /// Routed update by _id.
  void UpdateDoc(const std::string& collection, const doc::Value& id,
                 const doc::UpdateSpec& spec,
                 std::function<void(const driver::MongoClient::WriteResult&)>
                     done);

  /// Scatter-gather count: the router fans a count-only FindSpec to every
  /// shard (each via its own policy-chosen node) and sums the results.
  /// `done(total, latency)` fires when the slowest shard answers.
  void ScatterCount(const std::string& collection, const doc::Filter& filter,
                    server::OpClass op_class,
                    std::function<void(size_t total, sim::Duration latency)>
                        done);

  /// Scatter-gather find through the router: per-shard sub-queries merged
  /// by sort key; partial results when the spec allows and the deadline
  /// looms. Full ReadResult surface (latency, find payload, timed_out).
  void ScatterFind(std::shared_ptr<const proto::FindSpec> spec,
                   server::OpClass op_class,
                   std::function<void(const driver::MongoClient::ReadResult&)>
                       done,
                   driver::OpOptions opts = {});

  /// Chunk migration, modeled as the balancer's atomic critical section:
  /// reassigns the chunk in ConfigShards (version bump — routers holding
  /// the old version start bouncing with kStaleConfig) and moves the
  /// chunk's documents of `collection` from every donor node to every
  /// recipient node instantaneously, bypassing replication. Commands
  /// already admitted and queued on the donor race the move, exactly like
  /// ops racing a real migration's commit.
  void MoveChunk(const std::string& collection, int64_t chunk_id,
                 int to_shard);

 private:
  sim::EventLoop* loop_;
  sim::Rng rng_;
  ShardedClusterConfig config_;
  std::vector<std::unique_ptr<repl::ReplicaSet>> shards_;
  std::unique_ptr<ConfigShards> config_shards_;
  std::unique_ptr<Router> router_;
  std::unique_ptr<driver::MongoClient> top_client_;
};

}  // namespace dcg::shard

#endif  // DCG_SHARD_SHARDED_CLUSTER_H_
