#include "shard/router.h"

#include <utility>

#include "util/check.h"

namespace dcg::shard {

Router::Router(sim::EventLoop* loop, sim::Rng rng, net::Network* network,
               net::HostId host, ConfigShards* config_shards,
               std::vector<proto::CommandBus*> shard_buses,
               RouterConfig config)
    : loop_(loop),
      rng_(std::move(rng)),
      network_(network),
      host_(host),
      config_shards_(config_shards),
      config_(std::move(config)),
      bus_(network),
      cache_(config_shards->Snapshot()) {
  const int shards = static_cast<int>(shard_buses.size());
  DCG_CHECK(shards >= 1);
  // The router IS the service on its own bus: one registered host, so a
  // driver dialing this bus sees a 1-node topology whose "primary" is the
  // router. Registration order defines node index 0.
  bus_.RegisterService(host_,
                       [this](proto::Command c) { Handle(std::move(c)); });
  bus_.RegisterEnvelopeService(
      host_, [this](proto::Envelope e) { HandleEnvelope(std::move(e)); });
  budget_ = std::make_unique<core::StalenessBudget>(
      config_.balancer.stale_bound_seconds, shards);
  routed_to_shard_.assign(static_cast<size_t>(shards), 0);
  for (int s = 0; s < shards; ++s) {
    clients_.push_back(std::make_unique<driver::MongoClient>(
        loop_, rng_.Fork(), shard_buses[s], host_,
        config_.shard_client_options));
    states_.push_back(
        std::make_unique<core::SharedState>(config_.balancer.low_bal));
    if (config_.run_balancers) {
      policies_.push_back(
          std::make_unique<core::DecongestantPolicy>(states_.back().get()));
      balancers_.push_back(std::make_unique<core::ReadBalancer>(
          clients_.back().get(), states_.back().get(), config_.balancer,
          rng_.Fork()));
      // Every shard balancer gates against the one shared budget: the
      // client-wide StaleBound is a joint constraint, not N private ones.
      balancers_.back()->SetStalenessBudget(budget_.get(), s);
    } else {
      policies_.push_back(
          std::make_unique<core::FixedPolicy>(config_.fixed_pref));
      balancers_.push_back(nullptr);
    }
  }
}

Router::~Router() = default;

void Router::Start() {
  for (auto& client : clients_) client->Start();
  for (auto& balancer : balancers_) {
    if (balancer != nullptr) balancer->Start();
  }
}

void Router::SetTracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  for (auto& client : clients_) client->SetTracer(tracer);
}

void Router::Handle(proto::Command command) {
  ++commands_served_;
  switch (command.kind) {
    case proto::CommandKind::kPing:
    case proto::CommandKind::kHello: {
      RoutedOp op;
      op.cmd = std::move(command);
      op.arrived = loop_->Now();
      Reply(op, proto::Reply{});
      return;
    }
    case proto::CommandKind::kServerStatus: {
      // A mongos has no replication progress of its own; staleness lives
      // with the shards (and, cluster-wide, in the StalenessBudget). An
      // empty snapshot reads as estimate 0.
      RoutedOp op;
      op.cmd = std::move(command);
      op.arrived = loop_->Now();
      proto::Reply reply;
      reply.server_status.generated_at = loop_->Now();
      Reply(op, std::move(reply));
      return;
    }
    case proto::CommandKind::kFind:
    case proto::CommandKind::kWrite: {
      auto op = std::make_shared<RoutedOp>();
      op->cmd = std::move(command);
      op->arrived = loop_->Now();
      if (tracing() && op->cmd.ctx.op_id != 0) {
        op->router_span = tracer_->NewSpanId();
      }
      if (op->cmd.kind == proto::CommandKind::kWrite) {
        DCG_CHECK_MSG(op->cmd.route.has_key,
                      "router write needs a shard-key value in RouteInfo");
        ++routed_writes_;
        DispatchPoint(op);
      } else if (op->cmd.route.has_key) {
        ++routed_reads_;
        DispatchPoint(op);
      } else {
        DCG_CHECK_MSG(op->cmd.find_spec != nullptr,
                      "router cannot scatter an opaque ReadBody — "
                      "ship a FindSpec or a shard-key value");
        ++scatter_finds_;
        ScatterFind(op);
      }
      return;
    }
  }
}

void Router::HandleEnvelope(proto::Envelope envelope) {
  // No CPU model on the router: an envelope just unbundles. The batching
  // amortisation it bought lives on the client→router wire (one message)
  // and in the shards' envelope cost tables when sub-ops re-batch.
  for (proto::Command& command : envelope.commands) {
    Handle(std::move(command));
  }
}

bool Router::MakeSubOptions(const RoutedOp& op,
                            driver::OpOptions* opts) const {
  const proto::OpContext& ctx = op.cmd.ctx;
  if (ctx.deadline == 0) {
    opts->deadline = 0;  // explicitly none (-1 would mean "client default")
  } else {
    // maxTimeMS across the fan-out: sub-ops get exactly the time the
    // client has left, so no shard leg can outlive the client's promise.
    const sim::Duration remaining = ctx.deadline - loop_->Now();
    if (remaining <= 0) return false;
    opts->deadline = remaining;
  }
  opts->trace_id = ctx.trace_id != 0 ? ctx.trace_id : ctx.op_id;
  opts->parent_span = op.router_span;
  return true;
}

driver::ReadPreference Router::ChoosePreference(int shard) {
  return policies_[static_cast<size_t>(shard)]->ChooseReadPreference(&rng_);
}

void Router::DispatchPoint(const std::shared_ptr<RoutedOp>& op) {
  ++op->route_attempts;
  DCG_CHECK_MSG(op->route_attempts <= 16,
                "router re-route loop: chunk moves outpace refreshes");
  const proto::Command& cmd = op->cmd;
  const int64_t chunk = cache_->ChunkIdFor(cmd.route.key);
  const int shard = cache_->chunk(chunk).shard;
  driver::OpOptions opts;
  if (!MakeSubOptions(*op, &opts)) return;  // client already past deadline
  opts.route = cmd.route;
  opts.route.chunk_id = chunk;
  opts.route.shard_version = cache_->version();
  ++routed_to_shard_[static_cast<size_t>(shard)];
  if (cmd.kind == proto::CommandKind::kWrite) {
    clients_[static_cast<size_t>(shard)]->Write(
        cmd.op_class, cmd.txn_body,
        [this, op](const driver::MongoClient::WriteResult& result) {
          OnPointWrite(op, result);
        },
        cmd.concern, opts);
    return;
  }
  // The Read Preference decision is made *per shard* by that shard's own
  // policy — congestion is detected and relieved shard by shard, under
  // the one shared staleness budget.
  const driver::ReadPreference pref = ChoosePreference(shard);
  auto done = [this, op](const driver::MongoClient::ReadResult& result) {
    OnPointRead(op, result);
  };
  if (cmd.find_spec != nullptr) {
    clients_[static_cast<size_t>(shard)]->Find(pref, cmd.op_class,
                                               cmd.find_spec, done, opts);
  } else if (cmd.ctx.after_cluster_time.seq > 0) {
    clients_[static_cast<size_t>(shard)]->ReadAfter(
        pref, cmd.ctx.after_cluster_time, cmd.op_class, cmd.read_body, done,
        opts);
  } else {
    clients_[static_cast<size_t>(shard)]->Read(pref, cmd.op_class,
                                               cmd.read_body, done, opts);
  }
}

void Router::RefreshAndRetry(const std::shared_ptr<RoutedOp>& op) {
  ++stale_refreshes_;
  cache_ = config_shards_->Snapshot();
  DispatchPoint(op);
}

void Router::OnPointRead(const std::shared_ptr<RoutedOp>& op,
                         const driver::MongoClient::ReadResult& result) {
  if (result.stale_config) {
    RefreshAndRetry(op);
    return;
  }
  // Sub-op died on the client deadline: stay silent — the client's own
  // maxTimeMS timer is already speaking for this op.
  if (!result.ok) return;
  proto::Reply reply;
  reply.operation_time = result.operation_time;
  reply.from_primary = !result.used_secondary;
  reply.find_result = result.find;
  Reply(*op, std::move(reply));
}

void Router::OnPointWrite(const std::shared_ptr<RoutedOp>& op,
                          const driver::MongoClient::WriteResult& result) {
  if (result.stale_config) {
    // Admission refused the version before any body ran — nothing was
    // applied, so the post-refresh re-route cannot duplicate the write.
    RefreshAndRetry(op);
    return;
  }
  if (!result.ok) return;
  proto::Reply reply;
  reply.committed = result.committed;
  reply.operation_time = result.operation_time;
  reply.from_primary = true;
  Reply(*op, std::move(reply));
}

void Router::ScatterFind(const std::shared_ptr<RoutedOp>& op) {
  const proto::Command& cmd = op->cmd;
  auto gather = std::make_shared<Gather>();
  gather->op = op;
  gather->parts.resize(clients_.size());
  driver::OpOptions base;
  if (!MakeSubOptions(*op, &base)) return;
  base.route.collection = cmd.find_spec->collection;
  // Scatter sub-reads go unversioned (shard_version 0): they target every
  // shard by definition, so there is no placement to validate. A chunk
  // moving mid-scatter can double- or zero-count its documents — the same
  // window a real mongos closes with per-shard versions; partial-results
  // semantics already accept weaker answers here.
  if (cmd.ctx.deadline != 0 && cmd.find_spec->allow_partial) {
    const sim::Time fire_at = cmd.ctx.deadline - config_.partial_results_margin;
    if (fire_at > loop_->Now()) {
      gather->partial_timer = loop_->ScheduleAt(fire_at, [this, gather] {
        gather->partial_timer = 0;
        // No shard answered: an empty "partial" would read as a genuinely
        // empty result. Silence lets the client's deadline fail the op.
        if (gather->replied || gather->answered == 0) return;
        FinishScatter(gather, /*partial=*/true);
      });
    }
  }
  for (int s = 0; s < shard_count(); ++s) {
    const driver::ReadPreference pref = ChoosePreference(s);
    clients_[static_cast<size_t>(s)]->Find(
        pref, cmd.op_class, cmd.find_spec,
        [this, gather, s](const driver::MongoClient::ReadResult& result) {
          if (gather->replied) return;  // partial reply already went out
          if (!result.ok || result.find == nullptr) return;
          gather->parts[static_cast<size_t>(s)] = result.find;
          if (++gather->answered == shard_count()) {
            // Every shard answered: the merged reply leaves now, so the
            // client-observed latency is the slowest shard's — mongos
            // scatter-gather semantics.
            FinishScatter(gather, /*partial=*/false);
          }
        },
        base);
  }
}

void Router::FinishScatter(const std::shared_ptr<Gather>& gather,
                           bool partial) {
  gather->replied = true;
  if (gather->partial_timer != 0) {
    loop_->Cancel(gather->partial_timer);
    gather->partial_timer = 0;
  }
  if (partial) ++partial_replies_;
  const proto::FindSpec& spec = *gather->op->cmd.find_spec;
  auto merged = std::make_shared<proto::FindResult>();
  merged->partial = partial;
  merged->shards_answered = gather->answered;
  if (spec.count_only) {
    for (const auto& part : gather->parts) {
      if (part != nullptr) merged->count += part->count;
    }
  } else if (spec.sort_field.empty()) {
    // No sort: concatenate in shard order (deterministic), honoring limit.
    for (const auto& part : gather->parts) {
      if (part == nullptr) continue;
      for (const doc::Value& d : part->docs) {
        if (merged->docs.size() >= spec.limit) break;
        merged->docs.push_back(d);
      }
    }
    merged->count = merged->docs.size();
  } else {
    // K-way merge: each shard returned its matches already ordered by the
    // sort key, so repeatedly taking the best head reconstructs the global
    // order. Ties break toward the lower shard index (deterministic).
    const doc::Path path = spec.sort_field;
    const doc::Value null_key;
    const auto key_of = [&](const doc::Value& d) -> const doc::Value& {
      const doc::Value* k = d.FindPath(path);
      return k != nullptr ? *k : null_key;
    };
    std::vector<size_t> pos(gather->parts.size(), 0);
    while (merged->docs.size() < spec.limit) {
      int best = -1;
      for (int s = 0; s < static_cast<int>(gather->parts.size()); ++s) {
        const auto& part = gather->parts[static_cast<size_t>(s)];
        if (part == nullptr || pos[static_cast<size_t>(s)] >= part->docs.size()) {
          continue;
        }
        if (best < 0) {
          best = s;
          continue;
        }
        const auto& head = part->docs[pos[static_cast<size_t>(s)]];
        const auto& best_head =
            gather->parts[static_cast<size_t>(best)]
                ->docs[pos[static_cast<size_t>(best)]];
        const int cmp = key_of(head).Compare(key_of(best_head));
        if (spec.sort_descending ? cmp > 0 : cmp < 0) best = s;
      }
      if (best < 0) break;
      merged->docs.push_back(
          gather->parts[static_cast<size_t>(best)]
              ->docs[pos[static_cast<size_t>(best)]]);
      ++pos[static_cast<size_t>(best)];
    }
    merged->count = merged->docs.size();
  }
  proto::Reply reply;
  reply.from_primary = true;  // a merged answer has no single serving node
  reply.find_result = std::move(merged);
  Reply(*gather->op, std::move(reply));
}

proto::HelloReply Router::MakeHello() const {
  proto::HelloReply hello;
  hello.node_index = 0;
  hello.is_primary = true;  // the router is always "primary" of its bus
  hello.primary_index = 0;
  hello.term = 1;
  return hello;
}

void Router::Reply(const RoutedOp& op, proto::Reply reply) {
  const proto::Command& cmd = op.cmd;
  reply.op_id = cmd.ctx.op_id;
  reply.kind = cmd.kind;
  reply.node_index = 0;
  reply.is_hedge = cmd.ctx.is_hedge;
  reply.conn_id = cmd.ctx.conn_id;
  if (tracing() && cmd.ctx.op_id != 0) {
    reply.sent_at = loop_->Now();
    if (op.router_span != 0) {
      // The router leg: arrival → merged reply send. Sub-ops parented
      // their spans under this id while it was open; recording happens
      // once, here, like every other span owner.
      obs::SpanRecord span;
      span.trace_id =
          cmd.ctx.trace_id != 0 ? cmd.ctx.trace_id : cmd.ctx.op_id;
      span.span_id = op.router_span;
      span.parent_span_id = cmd.ctx.parent_span;
      span.kind = obs::SpanKind::kRouter;
      span.start = op.arrived;
      span.end = loop_->Now();
      span.attempt = cmd.ctx.attempt;
      span.is_hedge = cmd.ctx.is_hedge;
      tracer_->Record(span);
    }
  }
  // Hello piggyback on every reply, like any CommandService — the driver
  // refreshes its (1-node) topology view from whatever traffic flows.
  reply.hello = MakeHello();
  auto on_reply = cmd.on_reply;
  network_->Send(host_, cmd.reply_to,
                 [on_reply = std::move(on_reply), reply = std::move(reply)] {
                   if (on_reply) on_reply(reply);
                 });
}

}  // namespace dcg::shard
