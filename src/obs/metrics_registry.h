#ifndef DCG_OBS_METRICS_REGISTRY_H_
#define DCG_OBS_METRICS_REGISTRY_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "metrics/histogram.h"
#include "sim/time.h"

namespace dcg::obs {

/// One "key=value" label on a series (e.g. node=2, pref=secondary).
using Label = std::pair<std::string, std::string>;

/// Unifies the run's counters, gauges, and metrics::Histograms into named,
/// labeled series. Sources are callbacks over live state — registering a
/// metric costs nothing per operation; the registry only touches sources
/// when Sample() runs (once per control period). Exported as JSON next to
/// the CSVs.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Monotone cumulative value (sampled as-is; consumers diff).
  void RegisterCounter(std::string name, std::string unit,
                       std::vector<Label> labels,
                       std::function<double()> source) {
    scalars_.push_back({std::move(name), "counter", std::move(unit),
                        std::move(labels), std::move(source), {}});
  }

  /// Point-in-time value.
  void RegisterGauge(std::string name, std::string unit,
                     std::vector<Label> labels,
                     std::function<double()> source) {
    scalars_.push_back({std::move(name), "gauge", std::move(unit),
                        std::move(labels), std::move(source), {}});
  }

  /// Distribution: each Sample() snapshots count/mean/p50/p80/p99/max of
  /// the live histogram (cumulative over the run). `scale` converts the
  /// histogram's native unit into `unit` (e.g. 1/1e6 for ns → ms).
  void RegisterHistogram(std::string name, std::string unit,
                         std::vector<Label> labels,
                         const metrics::Histogram* histogram,
                         double scale = 1.0) {
    histograms_.push_back({std::move(name), std::move(unit),
                           std::move(labels), histogram, scale, {}});
  }

  /// Samples every registered series at time `now` (call once per control
  /// period).
  void Sample(sim::Time now);

  size_t series_count() const { return scalars_.size() + histograms_.size(); }
  size_t samples_taken() const { return samples_taken_; }

  /// Writes all series with their samples as JSON. Returns false on I/O
  /// failure.
  bool WriteJson(const std::string& path) const;

  /// Writes all series in the OpenMetrics text exposition format
  /// (one `# TYPE`/`# UNIT`/`# HELP` block per metric family, label
  /// escaping per spec, `# EOF` terminator). Counters gain the `_total`
  /// sample suffix; histograms are exported as summaries with quantile
  /// labels plus `_count`/`_sum`. Family names carry the unit as a
  /// suffix, as the spec requires. Timestamps are sim seconds.
  bool WriteOpenMetrics(const std::string& path) const;

  /// Writes all samples as one long-format CSV (time, name, labels,
  /// value) with the standard units comment line, so sweeps can diff
  /// series without a JSON parser. Histogram snapshots expand into
  /// `<name>_count/_mean/_p50/_p80/_p99/_max` rows.
  bool WriteCsv(const std::string& path) const;

 private:
  struct ScalarSeries {
    std::string name;
    const char* type;  // "counter" | "gauge"
    std::string unit;
    std::vector<Label> labels;
    std::function<double()> source;
    std::vector<std::pair<sim::Time, double>> samples;
  };

  struct HistogramSample {
    sim::Time at = 0;
    uint64_t count = 0;
    double mean = 0, p50 = 0, p80 = 0, p99 = 0, max = 0;
  };

  struct HistogramSeries {
    std::string name;
    std::string unit;
    std::vector<Label> labels;
    const metrics::Histogram* histogram;
    double scale;
    std::vector<HistogramSample> samples;
  };

  std::vector<ScalarSeries> scalars_;
  std::vector<HistogramSeries> histograms_;
  size_t samples_taken_ = 0;
};

}  // namespace dcg::obs

#endif  // DCG_OBS_METRICS_REGISTRY_H_
