#ifndef DCG_OBS_REPORT_H_
#define DCG_OBS_REPORT_H_

#include <string>
#include <vector>

namespace dcg::obs {

/// Plain-data description of one run dashboard, rendered by
/// WriteHtmlReport into a single dependency-free HTML file (inline CSS +
/// SVG, no scripts, no external assets). The structs carry no simulator
/// types on purpose: exp::BuildReportData converts an Experiment into
/// this form, and tests can build one by hand.

/// One (time seconds, value) sample of a plotted series.
struct ReportPoint {
  double t = 0;
  double v = 0;
};

/// One line on a panel. Series colors come from the panel's slot order —
/// fixed by position, never cycled.
struct ReportSeries {
  std::string name;
  std::vector<ReportPoint> points;
};

/// One chart: a titled, single-axis time-series plot. Panels with two or
/// more series render a legend plus direct labels at the line ends.
struct ReportPanel {
  std::string title;
  /// Y-axis unit, shown with the title (e.g. "ops/s", "seconds").
  std::string unit;
  std::vector<ReportSeries> series;
};

/// One interval on an alert timeline lane. `severity` selects the status
/// color: "page" (critical), "ticket" (serious), or "pending" (warning).
struct ReportBand {
  double t0 = 0;
  double t1 = 0;
  std::string severity;
  std::string label;
};

/// One alert timeline: a named horizontal strip of firing/pending bands
/// on the shared time axis.
struct ReportLane {
  std::string name;
  std::vector<ReportBand> bands;
};

/// One instant annotation (balancer decision reasons, alert edges) drawn
/// as a tick on the annotation strip with a hover tooltip.
struct ReportMarker {
  double t = 0;
  std::string label;
};

/// One header stat tile ("Reads/s", "P80 latency", ...).
struct ReportStat {
  std::string label;
  std::string value;
};

struct ReportData {
  std::string title;
  std::string subtitle;
  std::vector<ReportStat> stats;
  std::vector<ReportPanel> panels;
  std::vector<ReportLane> alert_lanes;
  std::vector<ReportMarker> markers;
};

/// Renders the dashboard to `path`. Returns false on I/O failure.
bool WriteHtmlReport(const ReportData& data, const std::string& path);

}  // namespace dcg::obs

#endif  // DCG_OBS_REPORT_H_
