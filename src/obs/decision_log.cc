#include "obs/decision_log.h"

namespace dcg::obs {

std::string_view ToString(BalanceReason reason) {
  switch (reason) {
    case BalanceReason::kNone:
      return "none";
    case BalanceReason::kLatencyRatioUp:
      return "latency_ratio_up";
    case BalanceReason::kLatencyRatioDown:
      return "latency_ratio_down";
    case BalanceReason::kHold:
      return "hold";
    case BalanceReason::kDownwardProbe:
      return "downward_probe";
    case BalanceReason::kNoEvidence:
      return "no_evidence";
    case BalanceReason::kStaleGateZero:
      return "stale_gate_zero";
    case BalanceReason::kStaleGateRelease:
      return "stale_gate_release";
    case BalanceReason::kPrimarySwapReset:
      return "primary_swap_reset";
    case BalanceReason::kSlaShedToSecondary:
      return "sla_shed_to_secondary";
    case BalanceReason::kSlaShedToPrimary:
      return "sla_shed_to_primary";
    case BalanceReason::kSlaHeadroomProbe:
      return "sla_headroom_probe";
    case BalanceReason::kAoiCapped:
      return "aoi_capped";
    case BalanceReason::kPidAdjust:
      return "pid_adjust";
  }
  return "unknown";
}

}  // namespace dcg::obs
