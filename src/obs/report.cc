#include "obs/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

namespace dcg::obs {
namespace {

// Validated categorical palette (fixed slot order — the ordering is the
// color-vision-deficiency safety mechanism, so series take slots by
// position, never by hue preference). Light / dark steps of the same
// eight hues.
constexpr int kSlots = 8;
const char* const kSeriesLight[kSlots] = {"#2a78d6", "#eb6834", "#1baf7a",
                                          "#eda100", "#e87ba4", "#008300",
                                          "#4a3aa7", "#e34948"};
const char* const kSeriesDark[kSlots] = {"#3987e5", "#d95926", "#199e70",
                                         "#c98500", "#d55181", "#008300",
                                         "#9085e9", "#e66767"};

// Status colors (fixed, never themed): page = critical, ticket = serious,
// pending = warning. Bands always carry a text label too — a status color
// never carries meaning alone.
const char* StatusColorVar(const std::string& severity) {
  if (severity == "page") return "var(--status-critical)";
  if (severity == "ticket") return "var(--status-serious)";
  return "var(--status-warning)";
}

std::string EscapeHtml(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string FormatNumber(double v) {
  char buffer[48];
  if (std::fabs(v) >= 1000) {
    std::snprintf(buffer, sizeof(buffer), "%.0f", v);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.4g", v);
  }
  return buffer;
}

// Chart geometry: fixed plot box, responsive via the SVG viewBox.
constexpr double kWidth = 860;
constexpr double kHeight = 220;
constexpr double kLeft = 64;
constexpr double kRight = 120;  // room for direct labels at line ends
constexpr double kTop = 14;
constexpr double kBottom = 30;

struct TimeDomain {
  double t0 = 0;
  double t1 = 1;
  double X(double t) const {
    const double span = t1 > t0 ? t1 - t0 : 1;
    return kLeft + (t - t0) / span * (kWidth - kLeft - kRight);
  }
};

TimeDomain ComputeTimeDomain(const ReportData& data) {
  TimeDomain domain;
  bool seen = false;
  auto fold = [&](double t) {
    if (!seen) {
      domain.t0 = domain.t1 = t;
      seen = true;
    } else {
      domain.t0 = std::min(domain.t0, t);
      domain.t1 = std::max(domain.t1, t);
    }
  };
  for (const ReportPanel& panel : data.panels) {
    for (const ReportSeries& series : panel.series) {
      for (const ReportPoint& p : series.points) fold(p.t);
    }
  }
  for (const ReportLane& lane : data.alert_lanes) {
    for (const ReportBand& band : lane.bands) {
      fold(band.t0);
      fold(band.t1);
    }
  }
  for (const ReportMarker& marker : data.markers) fold(marker.t);
  if (domain.t1 <= domain.t0) domain.t1 = domain.t0 + 1;
  return domain;
}

void WritePanel(std::FILE* f, const ReportPanel& panel,
                const TimeDomain& domain) {
  std::fprintf(f, "<figure class=\"panel\">\n");
  std::fprintf(f, "<figcaption>%s <span class=\"unit\">%s</span>",
               EscapeHtml(panel.title).c_str(), EscapeHtml(panel.unit).c_str());
  if (panel.series.size() >= 2) {
    std::fputs("<span class=\"legend\">", f);
    for (size_t i = 0; i < panel.series.size(); ++i) {
      const size_t slot = i % kSlots;
      std::fprintf(f,
                   "<span class=\"key\"><span class=\"swatch s%zu\"></span>"
                   "%s</span>",
                   slot + 1, EscapeHtml(panel.series[i].name).c_str());
    }
    std::fputs("</span>", f);
  }
  std::fputs("</figcaption>\n", f);

  // Y domain over all series (always include 0 for magnitude series).
  double lo = 0, hi = 0;
  bool seen = false;
  for (const ReportSeries& series : panel.series) {
    for (const ReportPoint& p : series.points) {
      if (!seen) {
        lo = hi = p.v;
        seen = true;
      } else {
        lo = std::min(lo, p.v);
        hi = std::max(hi, p.v);
      }
    }
  }
  lo = std::min(lo, 0.0);
  if (hi <= lo) hi = lo + 1;
  const double plot_h = kHeight - kTop - kBottom;
  auto y = [&](double v) {
    return kTop + (hi - v) / (hi - lo) * plot_h;
  };

  std::fprintf(f,
               "<svg viewBox=\"0 0 %.0f %.0f\" role=\"img\" "
               "aria-label=\"%s\">\n",
               kWidth, kHeight, EscapeHtml(panel.title).c_str());
  // Gridlines + y tick labels (4 divisions), then the baseline.
  for (int tick = 0; tick <= 4; ++tick) {
    const double v = lo + (hi - lo) * tick / 4.0;
    const double ty = y(v);
    std::fprintf(f,
                 "<line class=\"grid\" x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" "
                 "y2=\"%.1f\"/>\n",
                 kLeft, ty, kWidth - kRight, ty);
    std::fprintf(f,
                 "<text class=\"tick\" x=\"%.1f\" y=\"%.1f\" "
                 "text-anchor=\"end\">%s</text>\n",
                 kLeft - 6, ty + 3, FormatNumber(v).c_str());
  }
  std::fprintf(f,
               "<line class=\"axis\" x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" "
               "y2=\"%.1f\"/>\n",
               kLeft, y(lo), kWidth - kRight, y(lo));
  // X tick labels (time in seconds).
  for (int tick = 0; tick <= 5; ++tick) {
    const double t = domain.t0 + (domain.t1 - domain.t0) * tick / 5.0;
    std::fprintf(f,
                 "<text class=\"tick\" x=\"%.1f\" y=\"%.1f\" "
                 "text-anchor=\"middle\">%ss</text>\n",
                 domain.X(t), kHeight - kBottom + 16,
                 FormatNumber(t).c_str());
  }
  // The lines: 2px strokes, one slot per series, in fixed order. Each
  // polyline carries a native tooltip naming the series.
  for (size_t i = 0; i < panel.series.size(); ++i) {
    const ReportSeries& series = panel.series[i];
    if (series.points.empty()) continue;
    const size_t slot = i % kSlots;
    std::fprintf(f, "<polyline class=\"line s%zu\" points=\"", slot + 1);
    for (const ReportPoint& p : series.points) {
      std::fprintf(f, "%.1f,%.1f ", domain.X(p.t), y(p.v));
    }
    std::fprintf(f, "\"><title>%s</title></polyline>\n",
                 EscapeHtml(series.name).c_str());
    // Direct label at the line end, in text ink (never the series color);
    // the adjacent colored dot carries identity.
    const ReportPoint& last = series.points.back();
    std::fprintf(f,
                 "<circle class=\"dot s%zu\" cx=\"%.1f\" cy=\"%.1f\" "
                 "r=\"3\"/>\n",
                 slot + 1, domain.X(last.t), y(last.v));
    if (panel.series.size() >= 2 && panel.series.size() <= 4) {
      std::fprintf(f,
                   "<text class=\"label\" x=\"%.1f\" y=\"%.1f\">%s</text>\n",
                   domain.X(last.t) + 7,
                   y(last.v) + 3.5 + 11.0 * static_cast<double>(i % 2) -
                       5.5,
                   EscapeHtml(series.name).c_str());
    }
  }
  std::fputs("</svg>\n</figure>\n", f);
}

void WriteLanes(std::FILE* f, const ReportData& data,
                const TimeDomain& domain) {
  if (data.alert_lanes.empty() && data.markers.empty()) return;
  std::fputs("<figure class=\"panel\">\n<figcaption>Alert timeline "
             "<span class=\"unit\">page = critical, ticket = serious, "
             "pending = warning</span></figcaption>\n",
             f);
  const double lane_h = 26;
  const size_t lanes = data.alert_lanes.size() +
                       (data.markers.empty() ? 0 : 1);
  const double height = kTop + lane_h * static_cast<double>(lanes) + kBottom;
  std::fprintf(f, "<svg viewBox=\"0 0 %.0f %.0f\" role=\"img\" "
               "aria-label=\"Alert timeline\">\n",
               kWidth, height);
  for (size_t i = 0; i < data.alert_lanes.size(); ++i) {
    const ReportLane& lane = data.alert_lanes[i];
    const double top = kTop + lane_h * static_cast<double>(i);
    std::fprintf(f,
                 "<line class=\"grid\" x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" "
                 "y2=\"%.1f\"/>\n",
                 kLeft, top + lane_h - 4, kWidth - kRight, top + lane_h - 4);
    std::fprintf(f,
                 "<text class=\"tick\" x=\"%.1f\" y=\"%.1f\" "
                 "text-anchor=\"end\">%s</text>\n",
                 kLeft - 6, top + lane_h - 8, EscapeHtml(lane.name).c_str());
    for (const ReportBand& band : lane.bands) {
      const double x0 = domain.X(band.t0);
      const double x1 = std::max(domain.X(band.t1), x0 + 2);
      std::fprintf(f,
                   "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" "
                   "height=\"%.1f\" rx=\"2\" fill=\"%s\">"
                   "<title>%s (%ss \xe2\x80\x93 %ss)</title></rect>\n",
                   x0, top + 4, x1 - x0, lane_h - 12,
                   StatusColorVar(band.severity),
                   EscapeHtml(band.label).c_str(),
                   FormatNumber(band.t0).c_str(),
                   FormatNumber(band.t1).c_str());
    }
  }
  if (!data.markers.empty()) {
    const double top =
        kTop + lane_h * static_cast<double>(data.alert_lanes.size());
    std::fprintf(f,
                 "<text class=\"tick\" x=\"%.1f\" y=\"%.1f\" "
                 "text-anchor=\"end\">decisions</text>\n",
                 kLeft - 6, top + lane_h - 8);
    std::fprintf(f,
                 "<line class=\"grid\" x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" "
                 "y2=\"%.1f\"/>\n",
                 kLeft, top + lane_h - 4, kWidth - kRight, top + lane_h - 4);
    for (const ReportMarker& marker : data.markers) {
      std::fprintf(f,
                   "<line class=\"marker\" x1=\"%.1f\" y1=\"%.1f\" "
                   "x2=\"%.1f\" y2=\"%.1f\"><title>%s</title></line>\n",
                   domain.X(marker.t), top + 6, domain.X(marker.t),
                   top + lane_h - 6, EscapeHtml(marker.label).c_str());
    }
  }
  // Shared time ticks under the lanes.
  for (int tick = 0; tick <= 5; ++tick) {
    const double t = domain.t0 + (domain.t1 - domain.t0) * tick / 5.0;
    std::fprintf(f,
                 "<text class=\"tick\" x=\"%.1f\" y=\"%.1f\" "
                 "text-anchor=\"middle\">%ss</text>\n",
                 domain.X(t), height - kBottom + 16,
                 FormatNumber(t).c_str());
  }
  std::fputs("</svg>\n</figure>\n", f);
}

void WriteStyle(std::FILE* f) {
  std::fputs("<style>\n.viz-root {\n  color-scheme: light;\n", f);
  std::fputs("  --surface-1: #fcfcfb;\n  --page: #f9f9f7;\n"
             "  --text-primary: #0b0b0b;\n  --text-secondary: #52514e;\n"
             "  --muted: #898781;\n  --grid: #e1e0d9;\n"
             "  --axis: #c3c2b7;\n  --border: rgba(11,11,11,0.10);\n",
             f);
  for (int i = 0; i < kSlots; ++i) {
    std::fprintf(f, "  --series-%d: %s;\n", i + 1, kSeriesLight[i]);
  }
  std::fputs("  --status-warning: #fab219;\n  --status-serious: #ec835a;\n"
             "  --status-critical: #d03b3b;\n}\n",
             f);
  std::fputs("@media (prefers-color-scheme: dark) {\n"
             "  :root:where(:not([data-theme=\"light\"])) .viz-root {\n"
             "    color-scheme: dark;\n    --surface-1: #1a1a19;\n"
             "    --page: #0d0d0d;\n    --text-primary: #ffffff;\n"
             "    --text-secondary: #c3c2b7;\n    --grid: #2c2c2a;\n"
             "    --axis: #383835;\n"
             "    --border: rgba(255,255,255,0.10);\n",
             f);
  for (int i = 0; i < kSlots; ++i) {
    std::fprintf(f, "    --series-%d: %s;\n", i + 1, kSeriesDark[i]);
  }
  std::fputs("  }\n}\n", f);
  std::fputs(
      "body { margin: 0; background: var(--page); }\n"
      ".viz-root { font-family: system-ui, -apple-system, \"Segoe UI\", "
      "sans-serif; color: var(--text-primary); max-width: 920px; margin: 0 "
      "auto; padding: 24px 16px 48px; }\n"
      "h1 { font-size: 20px; margin: 0 0 4px; }\n"
      ".subtitle { color: var(--text-secondary); font-size: 13px; margin: 0 "
      "0 16px; }\n"
      ".stats { display: flex; flex-wrap: wrap; gap: 10px; margin: 0 0 "
      "18px; }\n"
      ".stat { background: var(--surface-1); border: 1px solid "
      "var(--border); border-radius: 8px; padding: 8px 14px; }\n"
      ".stat .v { font-size: 18px; }\n"
      ".stat .l { color: var(--text-secondary); font-size: 11px; }\n"
      ".panel { background: var(--surface-1); border: 1px solid "
      "var(--border); border-radius: 8px; padding: 12px 12px 4px; margin: 0 "
      "0 14px; }\n"
      "figcaption { font-size: 13px; margin: 0 0 6px; }\n"
      ".unit { color: var(--muted); font-size: 11px; margin-left: 6px; }\n"
      ".legend { float: right; font-size: 11px; color: "
      "var(--text-secondary); }\n"
      ".key { margin-left: 10px; }\n"
      ".swatch { display: inline-block; width: 9px; height: 9px; "
      "border-radius: 2px; margin-right: 4px; vertical-align: -1px; }\n"
      "svg { width: 100%; height: auto; display: block; }\n"
      ".grid { stroke: var(--grid); stroke-width: 1; }\n"
      ".axis { stroke: var(--axis); stroke-width: 1; }\n"
      ".tick { fill: var(--muted); font-size: 10px; font-variant-numeric: "
      "tabular-nums; }\n"
      ".label { fill: var(--text-secondary); font-size: 10px; }\n"
      ".line { fill: none; stroke-width: 2; stroke-linejoin: round; }\n"
      ".marker { stroke: var(--muted); stroke-width: 2; }\n",
      f);
  for (int i = 0; i < kSlots; ++i) {
    std::fprintf(f, ".line.s%d { stroke: var(--series-%d); }\n", i + 1,
                 i + 1);
    std::fprintf(f, ".dot.s%d { fill: var(--series-%d); }\n", i + 1, i + 1);
    std::fprintf(f, ".swatch.s%d { background: var(--series-%d); }\n", i + 1,
                 i + 1);
  }
  std::fputs("</style>\n", f);
}

}  // namespace

bool WriteHtmlReport(const ReportData& data, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("<!doctype html>\n<html lang=\"en\">\n<head>\n"
             "<meta charset=\"utf-8\">\n"
             "<meta name=\"viewport\" content=\"width=device-width, "
             "initial-scale=1\">\n",
             f);
  std::fprintf(f, "<title>%s</title>\n", EscapeHtml(data.title).c_str());
  WriteStyle(f);
  std::fputs("</head>\n<body>\n<div class=\"viz-root\">\n", f);
  std::fprintf(f, "<h1>%s</h1>\n", EscapeHtml(data.title).c_str());
  if (!data.subtitle.empty()) {
    std::fprintf(f, "<p class=\"subtitle\">%s</p>\n",
                 EscapeHtml(data.subtitle).c_str());
  }
  if (!data.stats.empty()) {
    std::fputs("<div class=\"stats\">\n", f);
    for (const ReportStat& stat : data.stats) {
      std::fprintf(f,
                   "<div class=\"stat\"><div class=\"v\">%s</div>"
                   "<div class=\"l\">%s</div></div>\n",
                   EscapeHtml(stat.value).c_str(),
                   EscapeHtml(stat.label).c_str());
    }
    std::fputs("</div>\n", f);
  }
  const TimeDomain domain = ComputeTimeDomain(data);
  WriteLanes(f, data, domain);
  for (const ReportPanel& panel : data.panels) {
    WritePanel(f, panel, domain);
  }
  std::fputs("</div>\n</body>\n</html>\n", f);
  const bool ok = std::fflush(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace dcg::obs
