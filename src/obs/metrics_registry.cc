#include "obs/metrics_registry.h"

#include <cstdio>

namespace dcg::obs {

namespace {

void WriteLabels(std::FILE* f, const std::vector<Label>& labels) {
  std::fputs("{", f);
  for (size_t i = 0; i < labels.size(); ++i) {
    std::fprintf(f, "%s\"%s\":\"%s\"", i == 0 ? "" : ",",
                 labels[i].first.c_str(), labels[i].second.c_str());
  }
  std::fputs("}", f);
}

}  // namespace

void MetricsRegistry::Sample(sim::Time now) {
  for (ScalarSeries& series : scalars_) {
    series.samples.emplace_back(now, series.source());
  }
  for (HistogramSeries& series : histograms_) {
    const metrics::Histogram& h = *series.histogram;
    HistogramSample sample;
    sample.at = now;
    sample.count = h.count();
    sample.mean = h.mean() * series.scale;
    sample.p50 = h.Percentile(50) * series.scale;
    sample.p80 = h.Percentile(80) * series.scale;
    sample.p99 = h.Percentile(99) * series.scale;
    sample.max = h.max() * series.scale;
    series.samples.push_back(sample);
  }
  ++samples_taken_;
}

bool MetricsRegistry::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("{\"series\":[", f);
  bool first = true;
  for (const ScalarSeries& series : scalars_) {
    std::fprintf(f, "%s\n{\"name\":\"%s\",\"type\":\"%s\",\"unit\":\"%s\","
                 "\"labels\":",
                 first ? "" : ",", series.name.c_str(), series.type,
                 series.unit.c_str());
    first = false;
    WriteLabels(f, series.labels);
    // Samples as [time_s, value] pairs.
    std::fputs(",\"samples\":[", f);
    for (size_t i = 0; i < series.samples.size(); ++i) {
      std::fprintf(f, "%s[%.1f,%.6g]", i == 0 ? "" : ",",
                   sim::ToSeconds(series.samples[i].first),
                   series.samples[i].second);
    }
    std::fputs("]}", f);
  }
  for (const HistogramSeries& series : histograms_) {
    std::fprintf(f,
                 "%s\n{\"name\":\"%s\",\"type\":\"histogram\",\"unit\":\"%s\","
                 "\"labels\":",
                 first ? "" : ",", series.name.c_str(), series.unit.c_str());
    first = false;
    WriteLabels(f, series.labels);
    std::fputs(",\"samples\":[", f);
    for (size_t i = 0; i < series.samples.size(); ++i) {
      const HistogramSample& s = series.samples[i];
      std::fprintf(f,
                   "%s{\"t\":%.1f,\"count\":%llu,\"mean\":%.6g,\"p50\":%.6g,"
                   "\"p80\":%.6g,\"p99\":%.6g,\"max\":%.6g}",
                   i == 0 ? "" : ",", sim::ToSeconds(s.at),
                   static_cast<unsigned long long>(s.count), s.mean, s.p50,
                   s.p80, s.p99, s.max);
    }
    std::fputs("]}", f);
  }
  std::fputs("\n]}\n", f);
  const bool ok = std::fflush(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace dcg::obs
