#include "obs/metrics_registry.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace dcg::obs {

namespace {

void WriteLabels(std::FILE* f, const std::vector<Label>& labels) {
  std::fputs("{", f);
  for (size_t i = 0; i < labels.size(); ++i) {
    std::fprintf(f, "%s\"%s\":\"%s\"", i == 0 ? "" : ",",
                 labels[i].first.c_str(), labels[i].second.c_str());
  }
  std::fputs("}", f);
}

}  // namespace

void MetricsRegistry::Sample(sim::Time now) {
  for (ScalarSeries& series : scalars_) {
    series.samples.emplace_back(now, series.source());
  }
  for (HistogramSeries& series : histograms_) {
    const metrics::Histogram& h = *series.histogram;
    HistogramSample sample;
    sample.at = now;
    sample.count = h.count();
    sample.mean = h.mean() * series.scale;
    sample.p50 = h.Percentile(50) * series.scale;
    sample.p80 = h.Percentile(80) * series.scale;
    sample.p99 = h.Percentile(99) * series.scale;
    sample.max = h.max() * series.scale;
    series.samples.push_back(sample);
  }
  ++samples_taken_;
}

bool MetricsRegistry::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("{\"series\":[", f);
  bool first = true;
  for (const ScalarSeries& series : scalars_) {
    std::fprintf(f, "%s\n{\"name\":\"%s\",\"type\":\"%s\",\"unit\":\"%s\","
                 "\"labels\":",
                 first ? "" : ",", series.name.c_str(), series.type,
                 series.unit.c_str());
    first = false;
    WriteLabels(f, series.labels);
    // Samples as [time_s, value] pairs.
    std::fputs(",\"samples\":[", f);
    for (size_t i = 0; i < series.samples.size(); ++i) {
      std::fprintf(f, "%s[%.1f,%.6g]", i == 0 ? "" : ",",
                   sim::ToSeconds(series.samples[i].first),
                   series.samples[i].second);
    }
    std::fputs("]}", f);
  }
  for (const HistogramSeries& series : histograms_) {
    std::fprintf(f,
                 "%s\n{\"name\":\"%s\",\"type\":\"histogram\",\"unit\":\"%s\","
                 "\"labels\":",
                 first ? "" : ",", series.name.c_str(), series.unit.c_str());
    first = false;
    WriteLabels(f, series.labels);
    std::fputs(",\"samples\":[", f);
    for (size_t i = 0; i < series.samples.size(); ++i) {
      const HistogramSample& s = series.samples[i];
      std::fprintf(f,
                   "%s{\"t\":%.1f,\"count\":%llu,\"mean\":%.6g,\"p50\":%.6g,"
                   "\"p80\":%.6g,\"p99\":%.6g,\"max\":%.6g}",
                   i == 0 ? "" : ",", sim::ToSeconds(s.at),
                   static_cast<unsigned long long>(s.count), s.mean, s.p50,
                   s.p80, s.p99, s.max);
    }
    std::fputs("]}", f);
  }
  std::fputs("\n]}\n", f);
  const bool ok = std::fflush(f) == 0;
  std::fclose(f);
  return ok;
}

namespace {

// OpenMetrics metric names are [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                    c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() ||
      (!std::isalpha(static_cast<unsigned char>(out[0])) && out[0] != '_' &&
       out[0] != ':')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

// Units become part of the family name, so they follow the same alphabet;
// "ops/s" style rates read as "ops_per_s".
std::string SanitizeUnit(const std::string& unit) {
  std::string out;
  out.reserve(unit.size());
  for (char c : unit) {
    if (c == '/') {
      out += "_per_";
    } else if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else {
      out.push_back('_');
    }
  }
  return out;
}

// The spec requires the family name to end with its unit.
std::string FamilyName(const std::string& name, const std::string& unit) {
  std::string family = SanitizeMetricName(name);
  if (unit.empty()) return family;
  const std::string suffix = "_" + unit;
  if (family.size() >= suffix.size() &&
      family.compare(family.size() - suffix.size(), suffix.size(), suffix) ==
          0) {
    return family;
  }
  return family + suffix;
}

// Label-value escaping per the OpenMetrics ABNF: backslash, double quote,
// and line feed.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

// HELP text escapes backslash and line feed only.
std::string EscapeHelp(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

// Renders `{k="v",...}` with `extra` appended (already escaped); returns
// "" for an empty label set so unlabeled samples stay bare.
std::string RenderLabelSet(const std::vector<Label>& labels,
                           const std::string& extra = std::string()) {
  std::string out;
  for (const Label& label : labels) {
    out += out.empty() ? "{" : ",";
    out += SanitizeMetricName(label.first) + "=\"" +
           EscapeLabelValue(label.second) + "\"";
  }
  if (!extra.empty()) {
    out += out.empty() ? "{" : ",";
    out += extra;
  }
  if (!out.empty()) out += "}";
  return out;
}

std::string CsvLabels(const std::vector<Label>& labels) {
  std::string out;
  for (const Label& label : labels) {
    if (!out.empty()) out += "|";
    out += label.first + "=" + label.second;
  }
  return out;
}

}  // namespace

bool MetricsRegistry::WriteOpenMetrics(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  // Group series into metric families: every labeled series with the same
  // name shares one # TYPE/# UNIT/# HELP block.
  struct ScalarFamily {
    const char* type;
    std::string unit;
    std::vector<const ScalarSeries*> series;
  };
  std::vector<std::string> scalar_order;
  std::map<std::string, ScalarFamily> scalar_families;
  for (const ScalarSeries& series : scalars_) {
    const std::string family = FamilyName(series.name, SanitizeUnit(series.unit));
    auto [it, inserted] = scalar_families.try_emplace(family);
    if (inserted) {
      scalar_order.push_back(family);
      it->second.type = series.type;
      it->second.unit = SanitizeUnit(series.unit);
    }
    it->second.series.push_back(&series);
  }
  for (const std::string& family : scalar_order) {
    const ScalarFamily& group = scalar_families.at(family);
    const bool counter = std::string(group.type) == "counter";
    std::fprintf(f, "# TYPE %s %s\n", family.c_str(),
                 counter ? "counter" : "gauge");
    if (!group.unit.empty()) {
      std::fprintf(f, "# UNIT %s %s\n", family.c_str(), group.unit.c_str());
    }
    std::fprintf(f, "# HELP %s %s\n", family.c_str(),
                 EscapeHelp("Sampled " + std::string(group.type) +
                            " series from the run's metrics registry.")
                     .c_str());
    for (const ScalarSeries* series : group.series) {
      const std::string labels = RenderLabelSet(series->labels);
      const std::string sample_name = counter ? family + "_total" : family;
      for (const auto& [at, value] : series->samples) {
        std::fprintf(f, "%s%s %.9g %.3f\n", sample_name.c_str(),
                     labels.c_str(), value, sim::ToSeconds(at));
      }
    }
  }

  struct HistogramFamily {
    std::string unit;
    std::vector<const HistogramSeries*> series;
  };
  std::vector<std::string> histogram_order;
  std::map<std::string, HistogramFamily> histogram_families;
  for (const HistogramSeries& series : histograms_) {
    const std::string family = FamilyName(series.name, SanitizeUnit(series.unit));
    auto [it, inserted] = histogram_families.try_emplace(family);
    if (inserted) {
      histogram_order.push_back(family);
      it->second.unit = SanitizeUnit(series.unit);
    }
    it->second.series.push_back(&series);
  }
  for (const std::string& family : histogram_order) {
    const HistogramFamily& group = histogram_families.at(family);
    std::fprintf(f, "# TYPE %s summary\n", family.c_str());
    if (!group.unit.empty()) {
      std::fprintf(f, "# UNIT %s %s\n", family.c_str(), group.unit.c_str());
    }
    std::fprintf(
        f, "# HELP %s %s\n", family.c_str(),
        EscapeHelp(
            "Cumulative distribution snapshots from the run's metrics "
            "registry.")
            .c_str());
    for (const HistogramSeries* series : group.series) {
      for (const HistogramSample& s : series->samples) {
        const double t = sim::ToSeconds(s.at);
        const auto quantile = [&](const char* q, double value) {
          std::fprintf(f, "%s%s %.9g %.3f\n", family.c_str(),
                       RenderLabelSet(series->labels,
                                      "quantile=\"" + std::string(q) + "\"")
                           .c_str(),
                       value, t);
        };
        quantile("0.5", s.p50);
        quantile("0.8", s.p80);
        quantile("0.99", s.p99);
        quantile("1", s.max);
        const std::string labels = RenderLabelSet(series->labels);
        std::fprintf(f, "%s_count%s %llu %.3f\n", family.c_str(),
                     labels.c_str(), static_cast<unsigned long long>(s.count),
                     t);
        std::fprintf(f, "%s_sum%s %.9g %.3f\n", family.c_str(), labels.c_str(),
                     s.mean * static_cast<double>(s.count), t);
      }
    }
  }

  std::fputs("# EOF\n", f);
  const bool ok = std::fflush(f) == 0;
  std::fclose(f);
  return ok;
}

bool MetricsRegistry::WriteCsv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs(
      "# units: time_s=seconds, value=per-series `unit` column; labels are "
      "pipe-separated key=value pairs\n",
      f);
  std::fputs("time_s,name,type,unit,labels,value\n", f);
  for (const ScalarSeries& series : scalars_) {
    const std::string labels = CsvLabels(series.labels);
    for (const auto& [at, value] : series.samples) {
      std::fprintf(f, "%.1f,%s,%s,%s,%s,%.9g\n", sim::ToSeconds(at),
                   series.name.c_str(), series.type, series.unit.c_str(),
                   labels.c_str(), value);
    }
  }
  for (const HistogramSeries& series : histograms_) {
    const std::string labels = CsvLabels(series.labels);
    for (const HistogramSample& s : series.samples) {
      const double t = sim::ToSeconds(s.at);
      const auto row = [&](const char* stat, double value) {
        std::fprintf(f, "%.1f,%s_%s,histogram,%s,%s,%.9g\n", t,
                     series.name.c_str(), stat, series.unit.c_str(),
                     labels.c_str(), value);
      };
      row("count", static_cast<double>(s.count));
      row("mean", s.mean);
      row("p50", s.p50);
      row("p80", s.p80);
      row("p99", s.p99);
      row("max", s.max);
    }
  }
  const bool ok = std::fflush(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace dcg::obs
