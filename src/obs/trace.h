#ifndef DCG_OBS_TRACE_H_
#define DCG_OBS_TRACE_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace dcg::obs {

/// What a span measures. One op decomposes causally:
///   op
///   ├─ attempt (per retry)
///   │   ├─ checkout        pool wait (queueing + establishment)
///   │   ├─ wire            command transit client → server
///   │   ├─ server_parking  afterClusterTime wait on the serving node
///   │   ├─ server_service  CPU queue + service on the serving node
///   │   └─ wire (reply)    reply transit server → client
///   ├─ hedge (speculative second arm, same children as an attempt)
///   └─ commit_wait         w:majority replication ack (writes)
/// With command batching on, an attempt that rides an envelope gains an
///   envelope          coalescing buffer wait + shared pool checkout
/// child covering enqueue → wire send (recorded once per envelope,
/// against the first member's trace).
/// In sharded mode a client op additionally traverses the mongos:
///   router            arrival at shard::Router → merged reply send; the
///                     per-shard sub-ops' own op/attempt spans parent
///                     under it (same trace id), so client→router→shard
///                     legs read as one linked tree.
enum class SpanKind : uint8_t {
  kOp,
  kAttempt,
  kCheckout,
  kWire,
  kServerService,
  kServerParking,
  kHedge,
  kCommitWait,
  kEnvelope,
  kRouter,
};

std::string_view ToString(SpanKind kind);

/// One closed interval of simulated time attributed to a trace. Spans are
/// recorded exactly once, at their end instant, by whichever layer owns
/// the interval — a fixed-size POD so tracing costs one vector append.
struct SpanRecord {
  /// The op id of the operation this span belongs to (trace id).
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  /// Enclosing span (0 = root: the op span itself, or commit_wait which
  /// the repl layer records against the trace directly).
  uint64_t parent_span_id = 0;
  SpanKind kind = SpanKind::kOp;
  sim::Time start = 0;
  sim::Time end = 0;
  /// Replica-set node index the interval ran against (-1 = client-side).
  int node = -1;
  /// Attempt ordinal (0 = first attempt) the span belongs to.
  int attempt = 0;
  bool is_hedge = false;
  bool ok = true;
};

/// Collects SpanRecords for one run. Fully off by default: a disabled
/// tracer records nothing, schedules nothing, and costs one branch per
/// probe site. Span ids come from a plain counter — sim state, never the
/// wall clock or RNG — so enabling tracing cannot perturb a seeded run,
/// and disabled runs replay their determinism goldens bit-identically.
class Tracer {
 public:
  /// Default span cap (~56 MB of records): big enough for minutes of
  /// simulated traffic, small enough not to eat the machine. Spans past
  /// the cap are dropped and counted — never silently.
  static constexpr size_t kDefaultMaxSpans = 1u << 20;

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void Enable(size_t max_spans = kDefaultMaxSpans) {
    enabled_ = true;
    max_spans_ = max_spans;
    spans_.reserve(std::min(max_spans, size_t{1} << 16));
  }

  /// Stops recording again (keeps the id counter, cap, and any recorded
  /// spans) — benches toggle one tracer on and off to measure the probe
  /// sites' disabled-branch cost against the recording cost on the same
  /// rig, where allocator and code-layout state are held equal.
  void Disable() { enabled_ = false; }

  bool enabled() const { return enabled_; }

  /// Fresh span id (deterministic: a counter, monotone per tracer).
  uint64_t NewSpanId() { return ++next_span_id_; }

  /// Appends one span. No-op when disabled; counted as dropped past the
  /// cap so a truncated trace is visible, not misleading.
  void Record(const SpanRecord& span) {
    if (!enabled_) return;
    if (spans_.size() >= max_spans_) {
      ++dropped_;
      return;
    }
    spans_.push_back(span);
  }

  const std::vector<SpanRecord>& spans() const { return spans_; }
  uint64_t dropped() const { return dropped_; }

  /// Drops recorded spans (keeps enabled state and the id counter, so
  /// span ids stay unique across a run — benches clear per iteration).
  void Clear() {
    spans_.clear();
    dropped_ = 0;
  }

 private:
  bool enabled_ = false;
  size_t max_spans_ = kDefaultMaxSpans;
  uint64_t next_span_id_ = 0;
  uint64_t dropped_ = 0;
  std::vector<SpanRecord> spans_;
};

class DecisionLog;
struct SloEvent;

/// Writes the recorded spans as Chrome trace-event JSON ("ph":"X"
/// complete events, microsecond timestamps), loadable in Perfetto or
/// chrome://tracing. Each trace id renders as its own thread row, so one
/// op's spans nest visually: checkout ⊆ attempt ⊆ op. When `decisions`
/// is non-null, every Balancer decision appears as a global instant
/// event, aligning fraction moves with the op traffic around them.
/// Returns false on I/O failure.
bool WriteChromeTrace(const Tracer& tracer, const DecisionLog* decisions,
                      const std::string& path);

/// Same, plus SLO alert transitions as global instant events (category
/// "slo"), so pages/resolves line up against the op traffic and fraction
/// moves that caused them.
bool WriteChromeTrace(const Tracer& tracer, const DecisionLog* decisions,
                      const std::vector<SloEvent>* slo_events,
                      const std::string& path);

}  // namespace dcg::obs

#endif  // DCG_OBS_TRACE_H_
