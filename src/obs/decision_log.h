#ifndef DCG_OBS_DECISION_LOG_H_
#define DCG_OBS_DECISION_LOG_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace dcg::obs {

/// Why a Balance Fraction decision came out the way it did — one value
/// per Algorithm 1 branch, plus the staleness-gate transitions the
/// balancer applies on top of the controller.
enum class BalanceReason : uint8_t {
  kNone = 0,
  /// Ratio above HIGHRATIO: primary congested, fraction stepped up.
  kLatencyRatioUp,
  /// Ratio below LOWRATIO: secondaries congested, fraction stepped down.
  kLatencyRatioDown,
  /// Ratio inside the dead band with non-flat history: hold.
  kHold,
  /// Flat history inside the dead band: §3.3 downward freshness probe.
  kDownwardProbe,
  /// A latency list was empty this period: no ratio evidence, hold.
  kNoEvidence,
  /// Staleness estimate crossed StaleBound: published fraction forced to
  /// zero (Algorithm 1 lines 3-7).
  kStaleGateZero,
  /// Staleness estimate dropped back within StaleBound: the controller's
  /// fraction is published again.
  kStaleGateRelease,
  /// The driver observed a primary swap (new term / new primary index):
  /// latency histories and staleness inputs described the *old* primary,
  /// so the balancer reset them and restarted from the floor fraction.
  kPrimarySwapReset,
  /// CPQ policy: the read-latency SLA was missed while the primary was
  /// the slow side — fraction stepped toward the secondaries.
  kSlaShedToSecondary,
  /// CPQ policy: the SLA was missed while the secondaries were the slow
  /// side — fraction stepped back toward the primary.
  kSlaShedToPrimary,
  /// CPQ policy: the SLA was met with headroom — drift toward the fresh
  /// primary (the freshness-seeking role of Algorithm 1's probe).
  kSlaHeadroomProbe,
  /// AoI policy: per-secondary age estimates capped the fraction below
  /// what the latency signal alone would have chosen.
  kAoiCapped,
  /// PID policy: the integral/derivative terms moved the fraction while
  /// the raw ratio sat inside the dead band.
  kPidAdjust,
};

/// Number of BalanceReason values (for reason-indexed count arrays).
inline constexpr size_t kBalanceReasonCount =
    static_cast<size_t>(BalanceReason::kPidAdjust) + 1;

std::string_view ToString(BalanceReason reason);

/// One Balancer decision: every input Algorithm 1 looked at, and what it
/// decided. Period ticks record one of these; staleness-gate transitions
/// (which happen on the 1 s serverStatus cadence, between ticks) record
/// one too, so *every* change of the published fraction has an entry.
struct BalanceDecision {
  sim::Time at = 0;
  /// RecentBal.latest() before / after the decision.
  double from_fraction = 0.0;
  double to_fraction = 0.0;
  /// What clients actually see after the staleness gate.
  double published_fraction = 0.0;
  BalanceReason reason = BalanceReason::kNone;
  /// Election term the driver believed at decision time (0 before any
  /// hello carried one) — lets failover analyses line decisions up
  /// against the primary swap that motivated them.
  uint64_t term = 0;

  // --- controller inputs ---
  double ratio = 0.0;  // Lss,primary / Lss,secondary
  bool ratio_valid = false;
  sim::Duration lss_primary = 0;
  sim::Duration lss_secondary = 0;
  bool history_flat = false;

  // --- staleness inputs ---
  int64_t staleness_estimate_s = 0;
  int64_t stale_bound_s = 0;
  /// Estimated staleness per node at decision time (-1 = unknown or the
  /// primary itself), from the latest serverStatus snapshot.
  std::vector<int64_t> secondary_staleness_s;
};

/// Append-only record of Balancer decisions. Always on — one entry per
/// 10 s control tick plus rare gate transitions is noise-free — and
/// deterministic (fed purely from sim state).
class DecisionLog {
 public:
  DecisionLog() = default;
  DecisionLog(const DecisionLog&) = delete;
  DecisionLog& operator=(const DecisionLog&) = delete;

  void Record(BalanceDecision decision) {
    entries_.push_back(std::move(decision));
  }

  const std::vector<BalanceDecision>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

 private:
  std::vector<BalanceDecision> entries_;
};

}  // namespace dcg::obs

#endif  // DCG_OBS_DECISION_LOG_H_
