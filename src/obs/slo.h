#ifndef DCG_OBS_SLO_H_
#define DCG_OBS_SLO_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace dcg::obs {

/// What a service-level objective is written against. Every kind reduces
/// to sliding-window good/bad event accounting; only the event source and
/// the good-classifier differ:
///   * freshness  one event per *secondary-served* read; good when the
///                served age (the serving node's staleness at completion)
///                is within `bound` seconds. In sharded mode the per-op
///                serving node is hidden behind the router, so the
///                experiment attaches a per-shard staleness source instead
///                (one event per evaluation, good when the sampled value
///                is within bound).
///   * latency    one event per completed read; good when the client
///                latency is within `bound` milliseconds. "p80 <= target"
///                is expressed as objective 0.80 over this stream.
///   * success    one event per operation; good when the driver completed
///                it (no deadline exceeded / retries exhausted).
enum class SloKind : uint8_t { kFreshness, kLatency, kSuccess };

std::string_view ToString(SloKind kind);

/// Alerting severities, SRE-style: a page demands a human now, a ticket
/// can wait for working hours.
enum class SloSeverity : uint8_t { kPage, kTicket };

std::string_view ToString(SloSeverity severity);

/// Alert life cycle per burn rule. Transitions are recorded as SloEvents:
///   inactive --condition--> pending --held for `hold`--> firing
///   pending  --condition clears------> inactive   (kCancelled)
///   firing   --clear for `resolve_hold`--> inactive (kResolved)
enum class AlertState : uint8_t { kInactive, kPending, kFiring };

std::string_view ToString(AlertState state);

enum class SloTransition : uint8_t { kPending, kFiring, kCancelled, kResolved };

std::string_view ToString(SloTransition transition);

/// One multi-window burn-rate alerting rule (the SRE workbook shape): the
/// alert condition is "burn rate >= `burn_rate` over BOTH the long and the
/// short window". The long window supplies significance, the short window
/// both fast firing and fast clearing — after recovery the short window
/// drains first, so a healed SLO stops alerting long before the long
/// window forgets the incident.
struct BurnRule {
  SloSeverity severity = SloSeverity::kPage;
  /// Threshold on budget consumption speed: bad_fraction / error_budget.
  double burn_rate = 10.0;
  sim::Duration long_window = sim::Seconds(30);
  sim::Duration short_window = sim::Seconds(10);
  /// How long the condition must persist before pending becomes firing
  /// (0 = fire on the first evaluation that meets both windows).
  sim::Duration hold = 0;
  /// How long the condition must stay clear before firing resolves —
  /// the flap-resistance dwell.
  sim::Duration resolve_hold = sim::Seconds(20);
};

/// The default page + ticket rule pair, scaled to simulation runs (whose
/// whole lifetime is minutes, not the SRE workbook's 30-day windows): the
/// page reacts to fast burn within one control period of significance,
/// the ticket to sustained slow burn.
std::vector<BurnRule> DefaultBurnRules();

/// One declarative objective: "`objective` of events over any window must
/// be good". The error budget is 1 - objective; burn rates are measured
/// against it.
struct SloSpec {
  /// Display name; defaults to ToString(kind) when empty.
  std::string name;
  SloKind kind = SloKind::kFreshness;
  /// Required good fraction, e.g. 0.99 ("99% of secondary reads fresh").
  double objective = 0.99;
  /// Good/bad classifier threshold in the kind's native unit: seconds of
  /// served age for freshness, milliseconds for latency; unused for
  /// success.
  double bound = 0;
  /// Alerting rules; empty means DefaultBurnRules().
  std::vector<BurnRule> rules;

  std::string_view display_name() const {
    return name.empty() ? ToString(kind) : std::string_view(name);
  }
};

/// Inputs the compact-spec parser needs to derive the `default` bundle.
struct SloDefaults {
  /// The run's StaleBound (seconds) — the freshness objective's bound.
  int64_t stale_bound_seconds = 10;
  /// The read-latency SLA target (milliseconds) — the latency objective's
  /// bound. Callers usually pass the CPQ controller's sla_target.
  double latency_target_ms = 3.0;
};

/// Parses the compact `--slo=` spec string shared by sim_cli, the chaos
/// harness, bakeoff.sh and CI. Grammar (semicolon-separated objectives):
///   spec    := "default" | objective (";" objective)*
///   objective := kind (":" key "=" value)*
///   kind    := "freshness" | "latency" | "success"
///   keys    := objective (good fraction, e.g. 0.99)
///            | bound     (seconds for freshness, ms for latency)
///            | name      (display name)
///            | page / ticket (burn-rate threshold; 0 disables the rule)
///            | window / short (page windows, seconds; the ticket rule
///              scales: long = 4 x window, short = window)
///            | hold / resolve (state-machine dwells, seconds)
/// "default" expands to the bundle derived from `defaults`:
///   freshness: served age <= stale_bound for 99% of secondary reads
///   latency:   read latency <= latency target for 80% of reads (p80)
///   success:   99.9% of operations complete
/// Returns false with `*error` set on malformed input.
bool ParseSloSpecs(const std::string& spec, const SloDefaults& defaults,
                   std::vector<SloSpec>* out, std::string* error);

/// One alert state-machine transition — the DecisionLog-style record that
/// lands in the event log, the Chrome trace (instant marker), and the
/// chaos trace.
struct SloEvent {
  sim::Time at = 0;
  /// SloSpec::display_name() of the objective.
  std::string slo;
  /// Shard index the tracker watches (-1 = cluster-wide).
  int shard = -1;
  SloSeverity severity = SloSeverity::kPage;
  SloTransition transition = SloTransition::kPending;
  /// Burn rates over the rule's windows at transition time.
  double burn_long = 0;
  double burn_short = 0;
  /// Good fraction over the rule's long window (1 when no events fell in
  /// the window — an empty window consumes no budget).
  double sli = 1.0;
  /// Long-window event counts behind `sli`.
  uint64_t good = 0;
  uint64_t bad = 0;
};

/// Sliding-window good/bad accounting plus the alert state machines for
/// one SloSpec. Buckets are one evaluation period wide; windows are
/// integral bucket counts (ceil(window / period)), so the math is exact
/// and replayable. All state advances only in Evaluate() — deterministic
/// in sim time, no events scheduled.
class SloTracker {
 public:
  SloTracker(SloSpec spec, sim::Duration eval_period, int shard = -1);

  /// Classifies one raw observation against the spec bound (good when
  /// value <= bound) — freshness and latency streams use this.
  void Observe(double value) {
    if (value <= spec_.bound) {
      ++current_good_;
    } else {
      ++current_bad_;
    }
  }
  void AddGood(uint64_t n = 1) { current_good_ += n; }
  void AddBad(uint64_t n = 1) { current_bad_ += n; }

  /// Attaches a sampled source: each Evaluate() observes source() once
  /// instead of relying on the per-op feed (sharded freshness watches the
  /// shard's staleness signal this way).
  void SetSource(std::function<double()> source) {
    source_ = std::move(source);
  }

  /// Closes the current bucket and runs every rule's state machine at
  /// `now`, appending any transitions to `events`.
  void Evaluate(sim::Time now, std::vector<SloEvent>* events);

  /// Good/bad sums over the last `window` of *closed* buckets.
  struct WindowStats {
    uint64_t good = 0;
    uint64_t bad = 0;
    double bad_fraction() const {
      const uint64_t total = good + bad;
      return total == 0 ? 0.0 : static_cast<double>(bad) /
                                    static_cast<double>(total);
    }
  };
  WindowStats WindowSums(sim::Duration window) const;

  /// bad_fraction over `window` divided by the error budget (1-objective).
  double BurnRate(sim::Duration window) const;

  const SloSpec& spec() const { return spec_; }
  int shard() const { return shard_; }
  size_t rule_count() const { return rule_states_.size(); }
  AlertState state(size_t rule) const { return rule_states_[rule].state; }
  const BurnRule& rule(size_t rule) const { return spec_.rules[rule]; }
  /// Worst long-window burn rate across rules at the last evaluation.
  double last_burn() const { return last_burn_; }
  /// Good fraction over the longest rule window at the last evaluation.
  double last_sli() const { return last_sli_; }
  uint64_t evaluations() const { return evaluations_; }

 private:
  struct Bucket {
    uint64_t good = 0;
    uint64_t bad = 0;
  };
  struct RuleState {
    AlertState state = AlertState::kInactive;
    sim::Time pending_since = 0;
    /// First evaluation instant at which the condition was observed clear
    /// while firing (-1 = condition currently met).
    sim::Time clear_since = -1;
  };

  SloSpec spec_;
  sim::Duration eval_period_;
  int shard_;
  std::function<double()> source_;

  /// Ring of closed buckets, newest last; sized to the longest window.
  std::vector<Bucket> ring_;
  size_t ring_capacity_ = 0;
  uint64_t current_good_ = 0;
  uint64_t current_bad_ = 0;
  std::vector<RuleState> rule_states_;
  double last_burn_ = 0;
  double last_sli_ = 1.0;
  uint64_t evaluations_ = 0;
};

class MetricsRegistry;

/// The run's SLO evaluation engine: owns one tracker per (spec, shard),
/// fans per-op observations out to the trackers that consume them, and
/// appends every alert transition to one ordered event log. Fed from the
/// unified CompleteOp/FailOp path; evaluated once per control period from
/// the period-close hook — never schedules events of its own, so an
/// SLO-enabled run replays the exact event sequence of a plain one.
class SloEngine {
 public:
  explicit SloEngine(sim::Duration eval_period) : eval_period_(eval_period) {}
  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  /// Adds a tracker for `spec` (shard -1 = cluster-wide). Returns it so
  /// callers can attach a sampled source.
  SloTracker& AddSlo(SloSpec spec, int shard = -1);

  /// Per-op feeds (each dispatches to every matching tracker).
  void ObserveServedAge(double age_s, bool used_secondary);
  void ObserveReadLatencyMs(double latency_ms);
  void ObserveOutcome(bool ok);

  /// Evaluates every tracker at `now` (call once per control period).
  void Evaluate(sim::Time now);

  /// Registers slo_sli / slo_burn gauges (per tracker) and the firing
  /// count with the run's metrics registry.
  void RegisterMetrics(MetricsRegistry* registry) const;

  const std::vector<SloEvent>& events() const { return events_; }
  const std::vector<std::unique_ptr<SloTracker>>& trackers() const {
    return trackers_;
  }
  uint64_t evaluations() const { return evaluations_; }

  /// Alert counts across all trackers at the last evaluation.
  int firing_count() const;
  int pending_count() const;
  /// Worst long-window burn rate across trackers at the last evaluation.
  double max_burn() const;

 private:
  sim::Duration eval_period_;
  std::vector<std::unique_ptr<SloTracker>> trackers_;
  std::vector<SloEvent> events_;
  uint64_t evaluations_ = 0;
};

}  // namespace dcg::obs

#endif  // DCG_OBS_SLO_H_
