#include "obs/trace.h"

#include <cstdio>

#include "obs/decision_log.h"
#include "obs/slo.h"

namespace dcg::obs {

std::string_view ToString(SpanKind kind) {
  switch (kind) {
    case SpanKind::kOp:
      return "op";
    case SpanKind::kAttempt:
      return "attempt";
    case SpanKind::kCheckout:
      return "checkout";
    case SpanKind::kWire:
      return "wire";
    case SpanKind::kServerService:
      return "server_service";
    case SpanKind::kServerParking:
      return "server_parking";
    case SpanKind::kHedge:
      return "hedge";
    case SpanKind::kCommitWait:
      return "commit_wait";
    case SpanKind::kEnvelope:
      return "envelope";
    case SpanKind::kRouter:
      return "router";
  }
  return "unknown";
}

namespace {

/// Category shown in the trace UI: which layer recorded the interval.
std::string_view Category(SpanKind kind) {
  switch (kind) {
    case SpanKind::kWire:
      return "net";
    case SpanKind::kServerService:
    case SpanKind::kServerParking:
      return "server";
    case SpanKind::kCommitWait:
      return "repl";
    case SpanKind::kRouter:
      return "shard";
    default:
      return "driver";
  }
}

}  // namespace

bool WriteChromeTrace(const Tracer& tracer, const DecisionLog* decisions,
                      const std::string& path) {
  return WriteChromeTrace(tracer, decisions, nullptr, path);
}

bool WriteChromeTrace(const Tracer& tracer, const DecisionLog* decisions,
                      const std::vector<SloEvent>* slo_events,
                      const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  // One synthetic process, one thread per trace id: Perfetto then renders
  // each op as its own row with the spans nested by time containment.
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f);
  std::fputs(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"decongestant ops\"}}",
      f);
  for (const SpanRecord& s : tracer.spans()) {
    std::fprintf(
        f,
        ",\n{\"name\":\"%.*s\",\"cat\":\"%.*s\",\"ph\":\"X\","
        "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%llu,"
        "\"args\":{\"span\":%llu,\"parent\":%llu,\"node\":%d,"
        "\"attempt\":%d,\"hedge\":%d,\"ok\":%d}}",
        static_cast<int>(ToString(s.kind).size()), ToString(s.kind).data(),
        static_cast<int>(Category(s.kind).size()), Category(s.kind).data(),
        sim::ToMicros(s.start), sim::ToMicros(s.end - s.start),
        static_cast<unsigned long long>(s.trace_id),
        static_cast<unsigned long long>(s.span_id),
        static_cast<unsigned long long>(s.parent_span_id), s.node, s.attempt,
        s.is_hedge ? 1 : 0, s.ok ? 1 : 0);
  }
  if (decisions != nullptr) {
    for (const BalanceDecision& d : decisions->entries()) {
      std::fprintf(
          f,
          ",\n{\"name\":\"balancer %.2f\\u2192%.2f %.*s\","
          "\"cat\":\"balancer\",\"ph\":\"i\",\"s\":\"g\",\"ts\":%.3f,"
          "\"pid\":1,\"args\":{\"ratio\":%.4f,\"ratio_valid\":%d,"
          "\"published\":%.2f,\"staleness_s\":%lld,\"stale_bound_s\":%lld}}",
          d.from_fraction, d.to_fraction,
          static_cast<int>(ToString(d.reason).size()),
          ToString(d.reason).data(), sim::ToMicros(d.at), d.ratio,
          d.ratio_valid ? 1 : 0, d.published_fraction,
          static_cast<long long>(d.staleness_estimate_s),
          static_cast<long long>(d.stale_bound_s));
    }
  }
  if (slo_events != nullptr) {
    for (const SloEvent& e : *slo_events) {
      std::fprintf(
          f,
          ",\n{\"name\":\"slo %.*s %.*s (%.*s)\",\"cat\":\"slo\","
          "\"ph\":\"i\",\"s\":\"g\",\"ts\":%.3f,\"pid\":1,"
          "\"args\":{\"shard\":%d,\"burn_long\":%.4f,\"burn_short\":%.4f,"
          "\"sli\":%.6f,\"good\":%llu,\"bad\":%llu}}",
          static_cast<int>(e.slo.size()), e.slo.data(),
          static_cast<int>(ToString(e.transition).size()),
          ToString(e.transition).data(),
          static_cast<int>(ToString(e.severity).size()),
          ToString(e.severity).data(), sim::ToMicros(e.at), e.shard,
          e.burn_long, e.burn_short, e.sli,
          static_cast<unsigned long long>(e.good),
          static_cast<unsigned long long>(e.bad));
    }
  }
  std::fputs("\n]}\n", f);
  const bool ok = std::fflush(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace dcg::obs
