#include "obs/slo.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/metrics_registry.h"

namespace dcg::obs {
namespace {

// Floor for the error budget so burn rates stay finite when the objective
// is 1.0 ("no bad event ever"): any bad event then reads as a huge burn.
constexpr double kMinBudget = 1e-9;

// Buckets a window spans, rounded up so a window always covers at least
// the periods it names.
size_t WindowBuckets(sim::Duration window, sim::Duration period) {
  if (period <= 0) return 1;
  const sim::Duration buckets = (window + period - 1) / period;
  return static_cast<size_t>(std::max<sim::Duration>(1, buckets));
}

}  // namespace

std::string_view ToString(SloKind kind) {
  switch (kind) {
    case SloKind::kFreshness:
      return "freshness";
    case SloKind::kLatency:
      return "latency";
    case SloKind::kSuccess:
      return "success";
  }
  return "unknown";
}

std::string_view ToString(SloSeverity severity) {
  switch (severity) {
    case SloSeverity::kPage:
      return "page";
    case SloSeverity::kTicket:
      return "ticket";
  }
  return "unknown";
}

std::string_view ToString(AlertState state) {
  switch (state) {
    case AlertState::kInactive:
      return "inactive";
    case AlertState::kPending:
      return "pending";
    case AlertState::kFiring:
      return "firing";
  }
  return "unknown";
}

std::string_view ToString(SloTransition transition) {
  switch (transition) {
    case SloTransition::kPending:
      return "pending";
    case SloTransition::kFiring:
      return "firing";
    case SloTransition::kCancelled:
      return "cancelled";
    case SloTransition::kResolved:
      return "resolved";
  }
  return "unknown";
}

std::vector<BurnRule> DefaultBurnRules() {
  std::vector<BurnRule> rules;
  BurnRule page;
  page.severity = SloSeverity::kPage;
  page.burn_rate = 10.0;
  page.long_window = sim::Seconds(30);
  page.short_window = sim::Seconds(10);
  page.hold = 0;
  page.resolve_hold = sim::Seconds(20);
  rules.push_back(page);
  BurnRule ticket;
  ticket.severity = SloSeverity::kTicket;
  ticket.burn_rate = 2.0;
  ticket.long_window = sim::Seconds(120);
  ticket.short_window = sim::Seconds(30);
  ticket.hold = sim::Seconds(10);
  ticket.resolve_hold = sim::Seconds(40);
  rules.push_back(ticket);
  return rules;
}

SloTracker::SloTracker(SloSpec spec, sim::Duration eval_period, int shard)
    : spec_(std::move(spec)), eval_period_(eval_period), shard_(shard) {
  if (spec_.rules.empty()) spec_.rules = DefaultBurnRules();
  for (const BurnRule& rule : spec_.rules) {
    ring_capacity_ = std::max(
        ring_capacity_, WindowBuckets(rule.long_window, eval_period_));
  }
  ring_.reserve(ring_capacity_);
  rule_states_.resize(spec_.rules.size());
}

SloTracker::WindowStats SloTracker::WindowSums(sim::Duration window) const {
  WindowStats stats;
  const size_t want = WindowBuckets(window, eval_period_);
  const size_t have = std::min(want, ring_.size());
  for (size_t i = 0; i < have; ++i) {
    const Bucket& bucket = ring_[ring_.size() - 1 - i];
    stats.good += bucket.good;
    stats.bad += bucket.bad;
  }
  return stats;
}

double SloTracker::BurnRate(sim::Duration window) const {
  const double budget = std::max(1.0 - spec_.objective, kMinBudget);
  return WindowSums(window).bad_fraction() / budget;
}

void SloTracker::Evaluate(sim::Time now, std::vector<SloEvent>* events) {
  if (source_) Observe(source_());
  // Close the current bucket into the ring (newest last).
  Bucket closed;
  closed.good = current_good_;
  closed.bad = current_bad_;
  current_good_ = 0;
  current_bad_ = 0;
  if (ring_.size() == ring_capacity_ && !ring_.empty()) {
    ring_.erase(ring_.begin());
  }
  ring_.push_back(closed);
  ++evaluations_;

  last_burn_ = 0;
  sim::Duration longest = 0;
  for (size_t i = 0; i < spec_.rules.size(); ++i) {
    const BurnRule& rule = spec_.rules[i];
    RuleState& rs = rule_states_[i];
    const WindowStats long_stats = WindowSums(rule.long_window);
    const double burn_long = BurnRate(rule.long_window);
    const double burn_short = BurnRate(rule.short_window);
    const bool condition =
        burn_long >= rule.burn_rate && burn_short >= rule.burn_rate;
    last_burn_ = std::max(last_burn_, burn_long);
    if (rule.long_window > longest) {
      longest = rule.long_window;
      const uint64_t total = long_stats.good + long_stats.bad;
      last_sli_ = total == 0 ? 1.0
                             : static_cast<double>(long_stats.good) /
                                   static_cast<double>(total);
    }

    auto emit = [&](SloTransition transition) {
      if (events == nullptr) return;
      SloEvent event;
      event.at = now;
      event.slo = std::string(spec_.display_name());
      event.shard = shard_;
      event.severity = rule.severity;
      event.transition = transition;
      event.burn_long = burn_long;
      event.burn_short = burn_short;
      const uint64_t total = long_stats.good + long_stats.bad;
      event.sli = total == 0 ? 1.0
                             : static_cast<double>(long_stats.good) /
                                   static_cast<double>(total);
      event.good = long_stats.good;
      event.bad = long_stats.bad;
      events->push_back(std::move(event));
    };

    switch (rs.state) {
      case AlertState::kInactive:
        if (condition) {
          rs.pending_since = now;
          rs.clear_since = -1;
          if (rule.hold <= 0) {
            rs.state = AlertState::kFiring;
            emit(SloTransition::kPending);
            emit(SloTransition::kFiring);
          } else {
            rs.state = AlertState::kPending;
            emit(SloTransition::kPending);
          }
        }
        break;
      case AlertState::kPending:
        if (!condition) {
          rs.state = AlertState::kInactive;
          emit(SloTransition::kCancelled);
        } else if (now - rs.pending_since >= rule.hold) {
          rs.state = AlertState::kFiring;
          emit(SloTransition::kFiring);
        }
        break;
      case AlertState::kFiring:
        if (condition) {
          rs.clear_since = -1;
        } else {
          if (rs.clear_since < 0) rs.clear_since = now;
          if (now - rs.clear_since >= rule.resolve_hold) {
            rs.state = AlertState::kInactive;
            emit(SloTransition::kResolved);
          }
        }
        break;
    }
  }
}

SloTracker& SloEngine::AddSlo(SloSpec spec, int shard) {
  trackers_.push_back(
      std::make_unique<SloTracker>(std::move(spec), eval_period_, shard));
  return *trackers_.back();
}

void SloEngine::ObserveServedAge(double age_s, bool used_secondary) {
  if (!used_secondary) return;
  for (auto& tracker : trackers_) {
    if (tracker->spec().kind == SloKind::kFreshness && tracker->shard() < 0) {
      tracker->Observe(age_s);
    }
  }
}

void SloEngine::ObserveReadLatencyMs(double latency_ms) {
  for (auto& tracker : trackers_) {
    if (tracker->spec().kind == SloKind::kLatency) {
      tracker->Observe(latency_ms);
    }
  }
}

void SloEngine::ObserveOutcome(bool ok) {
  for (auto& tracker : trackers_) {
    if (tracker->spec().kind == SloKind::kSuccess) {
      if (ok) {
        tracker->AddGood();
      } else {
        tracker->AddBad();
      }
    }
  }
}

void SloEngine::Evaluate(sim::Time now) {
  for (auto& tracker : trackers_) {
    tracker->Evaluate(now, &events_);
  }
  ++evaluations_;
}

void SloEngine::RegisterMetrics(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  for (const auto& tracker : trackers_) {
    std::vector<Label> labels;
    labels.push_back({"slo", std::string(tracker->spec().display_name())});
    if (tracker->shard() >= 0) {
      labels.push_back({"shard", std::to_string(tracker->shard())});
    }
    const SloTracker* raw = tracker.get();
    registry->RegisterGauge("slo_sli", "fraction", labels,
                            [raw] { return raw->last_sli(); });
    registry->RegisterGauge("slo_burn", "ratio", labels,
                            [raw] { return raw->last_burn(); });
  }
  registry->RegisterGauge("slo_alerts_firing", "alerts", {},
                          [this] { return static_cast<double>(firing_count()); });
}

int SloEngine::firing_count() const {
  int firing = 0;
  for (const auto& tracker : trackers_) {
    for (size_t i = 0; i < tracker->rule_count(); ++i) {
      if (tracker->state(i) == AlertState::kFiring) ++firing;
    }
  }
  return firing;
}

int SloEngine::pending_count() const {
  int pending = 0;
  for (const auto& tracker : trackers_) {
    for (size_t i = 0; i < tracker->rule_count(); ++i) {
      if (tracker->state(i) == AlertState::kPending) ++pending;
    }
  }
  return pending;
}

double SloEngine::max_burn() const {
  double burn = 0;
  for (const auto& tracker : trackers_) {
    burn = std::max(burn, tracker->last_burn());
  }
  return burn;
}

namespace {

// Splits `text` on `sep`, dropping empty pieces.
std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(sep, start);
    if (end == std::string::npos) end = text.size();
    if (end > start) pieces.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return pieces;
}

bool ParseDouble(const std::string& text, double* out) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || !std::isfinite(value)) {
    return false;
  }
  *out = value;
  return true;
}

void AppendDefaultBundle(const SloDefaults& defaults,
                         std::vector<SloSpec>* out) {
  SloSpec freshness;
  freshness.kind = SloKind::kFreshness;
  freshness.objective = 0.99;
  freshness.bound = static_cast<double>(defaults.stale_bound_seconds);
  out->push_back(std::move(freshness));
  SloSpec latency;
  latency.kind = SloKind::kLatency;
  latency.objective = 0.80;
  latency.bound = defaults.latency_target_ms;
  out->push_back(std::move(latency));
  SloSpec success;
  success.kind = SloKind::kSuccess;
  success.objective = 0.999;
  out->push_back(std::move(success));
}

}  // namespace

bool ParseSloSpecs(const std::string& spec, const SloDefaults& defaults,
                   std::vector<SloSpec>* out, std::string* error) {
  out->clear();
  if (spec.empty()) return true;
  if (spec == "default") {
    AppendDefaultBundle(defaults, out);
    return true;
  }
  for (const std::string& entry : Split(spec, ';')) {
    const std::vector<std::string> parts = Split(entry, ':');
    if (parts.empty()) continue;
    SloSpec parsed;
    if (parts[0] == "freshness") {
      parsed.kind = SloKind::kFreshness;
      parsed.objective = 0.99;
      parsed.bound = static_cast<double>(defaults.stale_bound_seconds);
    } else if (parts[0] == "latency") {
      parsed.kind = SloKind::kLatency;
      parsed.objective = 0.80;
      parsed.bound = defaults.latency_target_ms;
    } else if (parts[0] == "success") {
      parsed.kind = SloKind::kSuccess;
      parsed.objective = 0.999;
    } else {
      if (error != nullptr) {
        *error = "unknown slo kind '" + parts[0] +
                 "' (want freshness|latency|success)";
      }
      return false;
    }
    std::vector<BurnRule> rules = DefaultBurnRules();
    double page_rate = rules[0].burn_rate;
    double ticket_rate = rules[1].burn_rate;
    double window_s = sim::ToSeconds(rules[0].long_window);
    double short_s = sim::ToSeconds(rules[0].short_window);
    double hold_s = sim::ToSeconds(rules[0].hold);
    double resolve_s = sim::ToSeconds(rules[0].resolve_hold);
    for (size_t i = 1; i < parts.size(); ++i) {
      const size_t eq = parts[i].find('=');
      if (eq == std::string::npos) {
        if (error != nullptr) {
          *error = "malformed slo option '" + parts[i] + "' (want key=value)";
        }
        return false;
      }
      const std::string key = parts[i].substr(0, eq);
      const std::string value = parts[i].substr(eq + 1);
      if (key == "name") {
        parsed.name = value;
        continue;
      }
      double number = 0;
      if (!ParseDouble(value, &number)) {
        if (error != nullptr) {
          *error = "bad numeric value for slo option '" + key + "': '" +
                   value + "'";
        }
        return false;
      }
      if (key == "objective") {
        if (number <= 0 || number > 1) {
          if (error != nullptr) {
            *error = "slo objective must be in (0, 1], got " + value;
          }
          return false;
        }
        parsed.objective = number;
      } else if (key == "bound") {
        parsed.bound = number;
      } else if (key == "page") {
        page_rate = number;
      } else if (key == "ticket") {
        ticket_rate = number;
      } else if (key == "window") {
        window_s = number;
      } else if (key == "short") {
        short_s = number;
      } else if (key == "hold") {
        hold_s = number;
      } else if (key == "resolve") {
        resolve_s = number;
      } else {
        if (error != nullptr) *error = "unknown slo option '" + key + "'";
        return false;
      }
    }
    rules.clear();
    if (page_rate > 0) {
      BurnRule page;
      page.severity = SloSeverity::kPage;
      page.burn_rate = page_rate;
      page.long_window = sim::Seconds(window_s);
      page.short_window = sim::Seconds(short_s);
      page.hold = sim::Seconds(hold_s);
      page.resolve_hold = sim::Seconds(resolve_s);
      rules.push_back(page);
    }
    if (ticket_rate > 0) {
      // The ticket rule scales off the page windows: slower burn over a
      // longer horizon, with more dwell on both edges.
      BurnRule ticket;
      ticket.severity = SloSeverity::kTicket;
      ticket.burn_rate = ticket_rate;
      ticket.long_window = sim::Seconds(4 * window_s);
      ticket.short_window = sim::Seconds(window_s);
      ticket.hold = sim::Seconds(hold_s + 10);
      ticket.resolve_hold = sim::Seconds(2 * resolve_s);
      rules.push_back(ticket);
    }
    if (rules.empty()) {
      if (error != nullptr) {
        *error = "slo '" + std::string(parsed.display_name()) +
                 "' disables both page and ticket rules";
      }
      return false;
    }
    parsed.rules = std::move(rules);
    out->push_back(std::move(parsed));
  }
  if (out->empty()) {
    if (error != nullptr) *error = "empty slo spec '" + spec + "'";
    return false;
  }
  return true;
}

}  // namespace dcg::obs
