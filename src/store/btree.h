#ifndef DCG_STORE_BTREE_H_
#define DCG_STORE_BTREE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "doc/value.h"

namespace dcg::store {

/// In-memory B+-tree mapping document values (keys) to shared immutable
/// documents. This is the ordered index structure behind every collection
/// and secondary index in mongolite.
///
/// Design notes:
///  * Payloads are `shared_ptr<const doc::Value>`: reads hand out a stable
///    snapshot of the document; updates install a fresh copy (copy-on-write),
///    so a reader holding a document is never affected by later writes.
///  * Leaves are doubly linked for ordered range scans (TPC-C Stock Level
///    walks order lines via such scans).
///  * Deletion rebalances via borrow/merge, keeping every non-root node at
///    least half full.
class BTree {
 public:
  using Key = doc::Value;
  using Payload = std::shared_ptr<const doc::Value>;

  BTree();
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;
  BTree(BTree&&) noexcept;
  BTree& operator=(BTree&&) noexcept;

  /// Inserts or replaces. Returns true if the key was newly inserted,
  /// false if an existing payload was replaced.
  bool Upsert(const Key& key, Payload payload);

  /// Inserts only if absent. Returns false (no change) when present.
  bool Insert(const Key& key, Payload payload);

  /// Returns the payload for `key`, or nullptr.
  Payload Find(const Key& key) const;

  /// Removes `key`. Returns true if it was present.
  bool Erase(const Key& key);

  bool Contains(const Key& key) const { return Find(key) != nullptr; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Node;

 public:

  /// Forward cursor over (key, payload) pairs in key order. Invalidated by
  /// any mutation of the tree.
  class Iterator {
   public:
    bool Valid() const { return leaf_ != nullptr; }
    const Key& key() const;
    const Payload& payload() const;
    void Next();

   private:
    friend class BTree;
    Iterator(const Node* leaf, size_t pos) : leaf_(leaf), pos_(pos) {}
    const Node* leaf_;
    size_t pos_;
  };

  /// Cursor positioned at the smallest key.
  Iterator Begin() const;

  /// Cursor positioned at the first key >= `key`.
  Iterator LowerBound(const Key& key) const;

  /// Cursor positioned at the first key >= the composite prefix
  /// `[prefix, prefix + n)`, compared as if the prefix were an Array key —
  /// but without materializing one. Since an Array that is a strict prefix
  /// of another compares less, this is the inclusive lower bound for every
  /// tuple extending the prefix. Secondary-index probes use this to avoid
  /// a temporary key allocation per lookup.
  Iterator LowerBoundPrefix(const doc::Value* const* prefix, size_t n) const;

  /// Three-way comparison of a composite prefix against a stored key, with
  /// the same semantics as LowerBoundPrefix (<0: prefix sorts before key;
  /// a strict prefix of a longer tuple sorts before it).
  static int ComparePrefix(const doc::Value* const* prefix, size_t n,
                           const Key& key);

  /// Like ComparePrefix but compares only the first `n` components of
  /// `key` (0 when the key *extends* the prefix). Index range scans use it
  /// to detect the end of the matching range: iteration is past the range
  /// upper bound `prefix` once this returns < 0.
  static int ComparePrefixTruncated(const doc::Value* const* prefix, size_t n,
                                    const Key& key);

  /// Cursor positioned at the first key > `key`.
  Iterator UpperBound(const Key& key) const;

  /// Validates structural invariants (ordering, occupancy, uniform depth,
  /// leaf chain consistency, size). Aborts via assert-style check failure
  /// on violation; used heavily by the property tests.
  void CheckInvariants() const;

  /// Height of the tree (1 for a lone root leaf).
  int Height() const;

 private:
  // Implementation helpers (definitions in btree.cc).
  struct InsertResult;
  struct CheckState;
  InsertResult InsertRec(Node* node, const Key& key, Payload payload,
                         bool allow_replace);
  bool EraseRec(Node* node, const Key& key);
  void FixUnderflow(Node* parent, size_t child_idx);
  static void CheckNode(const Node* node, const Key* lo, const Key* hi,
                        int depth, bool is_root, CheckState* state);

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace dcg::store

#endif  // DCG_STORE_BTREE_H_
