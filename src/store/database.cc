#include "store/database.h"

#include <utility>

namespace dcg::store {
namespace {

uint64_t HashBytes(const char* data, size_t n, uint64_t seed) {
  // FNV-1a, good enough for structural fingerprints.
  uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t HashString(const std::string& s, uint64_t seed) {
  return HashBytes(s.data(), s.size(), seed);
}

}  // namespace

Collection& Database::GetOrCreate(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    it = collections_.emplace(name, std::make_unique<Collection>(name)).first;
  }
  return *it->second;
}

Collection* Database::Get(const std::string& name) {
  auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : it->second.get();
}

const Collection* Database::Get(const std::string& name) const {
  auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::CollectionNames() const {
  std::vector<std::string> names;
  names.reserve(collections_.size());
  for (const auto& [name, unused] : collections_) names.push_back(name);
  return names;
}

size_t Database::ApproxBytes() const {
  size_t total = 0;
  for (const auto& [unused, collection] : collections_) {
    total += collection->ApproxBytes();
  }
  return total;
}

void Database::ResetFrom(const Database& source) {
  collections_.clear();
  for (const auto& [name, collection] : source.collections_) {
    Collection& copy = GetOrCreate(name);
    for (const auto& [index_name, paths] : collection->IndexSpecs()) {
      copy.CreateIndex(index_name, paths);
    }
    collection->ForEach([&copy](const doc::Value&, const DocPtr& d) {
      copy.Insert(*d);
      return true;
    });
  }
}

uint64_t Database::Fingerprint() const {
  uint64_t h = 0;
  for (const auto& [name, collection] : collections_) {
    uint64_t ch = HashString(name, 0);
    collection->ForEach([&ch](const doc::Value& id, const DocPtr& d) {
      // Documents render deterministically (field order is preserved by
      // the oplog replay), so JSON text is a stable encoding.
      ch = HashString(id.ToJson(), ch);
      ch = HashString(d->ToJson(), ch);
      return true;
    });
    h ^= ch * 0x9e3779b97f4a7c15ULL + 1;
  }
  return h;
}

}  // namespace dcg::store
