#ifndef DCG_STORE_DATABASE_H_
#define DCG_STORE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "store/collection.h"

namespace dcg::store {

/// A node-local set of named collections — the data a single replica holds.
///
/// Each ReplicaNode owns one Database; replication replays the primary's
/// logical operations against the secondaries' Databases, so after the log
/// drains all Databases in a replica set are equal (asserted by the
/// convergence property tests via Fingerprint()).
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Returns the collection, creating it if needed.
  Collection& GetOrCreate(const std::string& name);

  /// Returns the collection or nullptr.
  Collection* Get(const std::string& name);
  const Collection* Get(const std::string& name) const;

  /// Names of all collections, sorted.
  std::vector<std::string> CollectionNames() const;

  /// Total approximate bytes across collections.
  size_t ApproxBytes() const;

  /// Replaces this database's entire contents (collections, documents,
  /// and secondary indexes) with a deep copy of `source` — the data path
  /// of a MongoDB initial sync, used when a node rejoins after a crash.
  void ResetFrom(const Database& source);

  /// Order-insensitive structural fingerprint of all data (collection
  /// names, document ids, and document contents). Two databases hold the
  /// same logical data iff their fingerprints are equal (up to hash
  /// collisions); used to assert replication convergence cheaply.
  uint64_t Fingerprint() const;

 private:
  std::map<std::string, std::unique_ptr<Collection>> collections_;
};

}  // namespace dcg::store

#endif  // DCG_STORE_DATABASE_H_
