#ifndef DCG_STORE_COLLECTION_H_
#define DCG_STORE_COLLECTION_H_

#include <functional>
#include <utility>
#include <memory>
#include <string>
#include <vector>

#include "doc/filter.h"
#include "doc/path.h"
#include "doc/update.h"
#include "doc/value.h"
#include "store/btree.h"

namespace dcg::store {

/// A shared immutable document snapshot, as handed out by reads.
using DocPtr = std::shared_ptr<const doc::Value>;

/// Options for FindWith: ordering, limit, and field projection (the
/// find() modifiers the TPC-C adaptation and ad-hoc queries use).
struct FindOptions {
  /// Dotted path to order results by (documents missing the path sort
  /// first, as Null). Empty: _id order. Compiled once at assignment, so
  /// sorting never re-tokenizes it per comparison; plain strings convert
  /// implicitly.
  doc::Path sort_path;
  bool sort_descending = false;
  /// Applied after sorting.
  size_t limit = SIZE_MAX;
  /// Fields to keep in the returned copies ("_id" is always kept).
  /// Empty: return whole documents.
  std::vector<std::string> projection;
};

/// A named document collection: a primary B+-tree keyed by the required
/// "_id" field, plus optional secondary indexes over dotted field paths.
///
/// Writes are copy-on-write: Update clones the stored document, applies the
/// UpdateSpec, and swaps the pointer, so concurrent readers (in simulated
/// time) keep consistent snapshots.
class Collection {
 public:
  explicit Collection(std::string name);

  Collection(const Collection&) = delete;
  Collection& operator=(const Collection&) = delete;
  Collection(Collection&&) noexcept = default;
  Collection& operator=(Collection&&) noexcept = default;

  const std::string& name() const { return name_; }
  size_t size() const { return primary_.size(); }

  /// Inserts a document (must be an Object with an "_id" field).
  /// Returns false when a document with the same _id already exists.
  bool Insert(doc::Value document);

  /// Inserts or fully replaces by _id.
  void Upsert(doc::Value document);

  /// Point lookup by _id. Returns nullptr when absent.
  DocPtr FindById(const doc::Value& id) const;

  /// Applies an update spec to the document with the given _id.
  /// Returns false when the document does not exist.
  bool Update(const doc::Value& id, const doc::UpdateSpec& spec);

  /// Removes by _id. Returns true if it existed.
  bool Remove(const doc::Value& id);

  /// Declares a secondary index over the given dotted paths. Existing
  /// documents are indexed immediately. Documents missing an indexed path
  /// are indexed under Null for that component (MongoDB-like).
  void CreateIndex(std::string index_name, std::vector<std::string> paths);

  bool HasIndex(const std::string& index_name) const;

  /// Names and paths of all secondary indexes (for resync/clone).
  std::vector<std::pair<std::string, std::vector<std::string>>> IndexSpecs()
      const;

  /// Returns matching documents in _id order, up to `limit`.
  /// Uses the primary key or a secondary index when the filter pins them
  /// with equality; otherwise scans.
  std::vector<DocPtr> Find(const doc::Filter& filter,
                           size_t limit = SIZE_MAX) const;

  /// Number of matching documents, counted in place (no result
  /// materialization).
  size_t Count(const doc::Filter& filter) const;

  /// Find with sort/limit/projection. Returns document *copies* (projected
  /// when requested), since projection materializes new values.
  std::vector<doc::Value> FindWith(const doc::Filter& filter,
                                   const FindOptions& options) const;

  /// Range scan over the primary key: documents with low <= _id <= high,
  /// in _id order, up to `limit`.
  std::vector<DocPtr> RangeById(const doc::Value& low, const doc::Value& high,
                                size_t limit = SIZE_MAX) const;

  /// Range scan over a secondary index: documents whose indexed tuple is
  /// lexicographically within [low_prefix, high_prefix] (inclusive, compared
  /// over the length of each given prefix). Results are in index order.
  std::vector<DocPtr> IndexScan(const std::string& index_name,
                                const std::vector<doc::Value>& low_prefix,
                                const std::vector<doc::Value>& high_prefix,
                                size_t limit = SIZE_MAX) const;

  /// Visits every document in _id order; stop early by returning false.
  void ForEach(const std::function<bool(const doc::Value& id,
                                        const DocPtr& document)>& fn) const;

  /// Validates primary and secondary index invariants (every document
  /// reachable through each index exactly once, and vice versa).
  void CheckInvariants() const;

  /// Approximate bytes of live documents (for the disk model).
  size_t ApproxBytes() const { return approx_bytes_; }

 private:
  struct Index {
    std::string name;
    std::vector<doc::Path> paths;  // compiled at CreateIndex
    BTree tree;  // key: Array[path values..., _id]; payload: document
  };

  static doc::Value IndexKey(const Index& index, const doc::Value& id,
                             const doc::Value& document);

  /// Enumerates matching documents in the same order Find returns them,
  /// choosing the primary key or a secondary index when the filter pins
  /// them with equality. `visit` returns false to stop early. Find and
  /// Count share this enumerator (Count never materializes results).
  template <typename Visit>
  void VisitMatches(const doc::Filter& filter, Visit&& visit) const;

  void IndexDocument(Index* index, const doc::Value& id, const DocPtr& d);
  void UnindexDocument(Index* index, const doc::Value& id,
                       const doc::Value& document);

  std::string name_;
  BTree primary_;
  std::vector<std::unique_ptr<Index>> indexes_;
  size_t approx_bytes_ = 0;
};

}  // namespace dcg::store

#endif  // DCG_STORE_COLLECTION_H_
