#include "store/btree.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "util/check.h"

namespace dcg::store {

namespace {
// Fanout tuned for Value keys: comparisons dominate, so moderate nodes.
constexpr size_t kMaxLeafKeys = 16;
constexpr size_t kMinLeafKeys = kMaxLeafKeys / 2;
constexpr size_t kMaxChildren = 16;
constexpr size_t kMinChildren = kMaxChildren / 2;
}  // namespace

struct BTree::Node {
  explicit Node(bool is_leaf) : leaf(is_leaf) {}

  bool leaf;
  std::vector<Key> keys;
  std::vector<Payload> vals;  // leaf only, parallel to keys
  std::vector<std::unique_ptr<Node>> children;  // internal: keys.size() + 1
  Node* next = nullptr;  // leaf chain
  Node* prev = nullptr;
};

namespace {

// Index of the first key >= `key` within a node's key vector.
size_t KeyLowerBound(const std::vector<doc::Value>& keys,
                     const doc::Value& key) {
  size_t lo = 0, hi = keys.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (keys[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t KeyUpperBound(const std::vector<doc::Value>& keys,
                     const doc::Value& key) {
  size_t lo = 0, hi = keys.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (key < keys[mid]) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace

struct BTree::InsertResult {
  enum class Outcome { kNew, kReplaced, kNoop };

  explicit InsertResult(Outcome o) : outcome(o) {}

  Outcome outcome;
  bool split = false;
  Key sep;                       // valid when split
  std::unique_ptr<Node> right;   // valid when split
};

BTree::BTree() : root_(std::make_unique<Node>(/*is_leaf=*/true)) {}
BTree::~BTree() = default;
BTree::BTree(BTree&&) noexcept = default;
BTree& BTree::operator=(BTree&&) noexcept = default;

BTree::InsertResult BTree::InsertRec(Node* node, const Key& key,
                                     Payload payload, bool allow_replace) {
  if (node->leaf) {
    const size_t pos = KeyLowerBound(node->keys, key);
    if (pos < node->keys.size() && node->keys[pos] == key) {
      if (!allow_replace) return InsertResult(InsertResult::Outcome::kNoop);
      node->vals[pos] = std::move(payload);
      return InsertResult(InsertResult::Outcome::kReplaced);
    }
    node->keys.insert(node->keys.begin() + pos, key);
    node->vals.insert(node->vals.begin() + pos, std::move(payload));
    InsertResult result{InsertResult::Outcome::kNew};
    if (node->keys.size() > kMaxLeafKeys) {
      auto right = std::make_unique<Node>(/*is_leaf=*/true);
      const size_t mid = node->keys.size() / 2;
      right->keys.assign(std::make_move_iterator(node->keys.begin() + mid),
                         std::make_move_iterator(node->keys.end()));
      right->vals.assign(std::make_move_iterator(node->vals.begin() + mid),
                         std::make_move_iterator(node->vals.end()));
      node->keys.resize(mid);
      node->vals.resize(mid);
      right->next = node->next;
      right->prev = node;
      if (node->next != nullptr) node->next->prev = right.get();
      node->next = right.get();
      result.split = true;
      result.sep = right->keys.front();
      result.right = std::move(right);
    }
    return result;
  }

  const size_t idx = KeyUpperBound(node->keys, key);
  InsertResult child_result =
      InsertRec(node->children[idx].get(), key, std::move(payload),
                allow_replace);
  InsertResult result{child_result.outcome};
  if (child_result.split) {
    node->keys.insert(node->keys.begin() + idx, std::move(child_result.sep));
    node->children.insert(node->children.begin() + idx + 1,
                          std::move(child_result.right));
    if (node->children.size() > kMaxChildren) {
      const size_t mid = node->keys.size() / 2;  // key promoted upward
      auto right = std::make_unique<Node>(/*is_leaf=*/false);
      result.sep = std::move(node->keys[mid]);
      right->keys.assign(std::make_move_iterator(node->keys.begin() + mid + 1),
                         std::make_move_iterator(node->keys.end()));
      right->children.assign(
          std::make_move_iterator(node->children.begin() + mid + 1),
          std::make_move_iterator(node->children.end()));
      node->keys.resize(mid);
      node->children.resize(mid + 1);
      result.split = true;
      result.right = std::move(right);
    }
  }
  return result;
}

bool BTree::Upsert(const Key& key, Payload payload) {
  InsertResult r =
      InsertRec(root_.get(), key, std::move(payload), /*allow_replace=*/true);
  if (r.split) {
    auto new_root = std::make_unique<Node>(/*is_leaf=*/false);
    new_root->keys.push_back(std::move(r.sep));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(r.right));
    root_ = std::move(new_root);
  }
  if (r.outcome == InsertResult::Outcome::kNew) {
    ++size_;
    return true;
  }
  return false;
}

bool BTree::Insert(const Key& key, Payload payload) {
  InsertResult r =
      InsertRec(root_.get(), key, std::move(payload), /*allow_replace=*/false);
  if (r.split) {
    auto new_root = std::make_unique<Node>(/*is_leaf=*/false);
    new_root->keys.push_back(std::move(r.sep));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(r.right));
    root_ = std::move(new_root);
  }
  if (r.outcome == InsertResult::Outcome::kNew) {
    ++size_;
    return true;
  }
  return false;
}

BTree::Payload BTree::Find(const Key& key) const {
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children[KeyUpperBound(node->keys, key)].get();
  }
  const size_t pos = KeyLowerBound(node->keys, key);
  if (pos < node->keys.size() && node->keys[pos] == key) {
    return node->vals[pos];
  }
  return nullptr;
}

void BTree::FixUnderflow(Node* parent, size_t child_idx) {
  Node* child = parent->children[child_idx].get();
  auto has_spare = [](const Node* n) {
    return n->leaf ? n->keys.size() > kMinLeafKeys
                   : n->children.size() > kMinChildren;
  };

  if (child_idx > 0) {
    Node* left = parent->children[child_idx - 1].get();
    if (has_spare(left)) {
      if (child->leaf) {
        child->keys.insert(child->keys.begin(), std::move(left->keys.back()));
        child->vals.insert(child->vals.begin(), std::move(left->vals.back()));
        left->keys.pop_back();
        left->vals.pop_back();
        parent->keys[child_idx - 1] = child->keys.front();
      } else {
        child->keys.insert(child->keys.begin(),
                           std::move(parent->keys[child_idx - 1]));
        parent->keys[child_idx - 1] = std::move(left->keys.back());
        left->keys.pop_back();
        child->children.insert(child->children.begin(),
                               std::move(left->children.back()));
        left->children.pop_back();
      }
      return;
    }
  }
  if (child_idx + 1 < parent->children.size()) {
    Node* right = parent->children[child_idx + 1].get();
    if (has_spare(right)) {
      if (child->leaf) {
        child->keys.push_back(std::move(right->keys.front()));
        child->vals.push_back(std::move(right->vals.front()));
        right->keys.erase(right->keys.begin());
        right->vals.erase(right->vals.begin());
        parent->keys[child_idx] = right->keys.front();
      } else {
        child->keys.push_back(std::move(parent->keys[child_idx]));
        parent->keys[child_idx] = std::move(right->keys.front());
        right->keys.erase(right->keys.begin());
        child->children.push_back(std::move(right->children.front()));
        right->children.erase(right->children.begin());
      }
      return;
    }
  }

  // Merge with a sibling. `li` is the left member of the merged pair.
  const size_t li =
      (child_idx + 1 < parent->children.size()) ? child_idx : child_idx - 1;
  Node* l = parent->children[li].get();
  Node* r = parent->children[li + 1].get();
  if (l->leaf) {
    l->keys.insert(l->keys.end(), std::make_move_iterator(r->keys.begin()),
                   std::make_move_iterator(r->keys.end()));
    l->vals.insert(l->vals.end(), std::make_move_iterator(r->vals.begin()),
                   std::make_move_iterator(r->vals.end()));
    l->next = r->next;
    if (r->next != nullptr) r->next->prev = l;
  } else {
    l->keys.push_back(std::move(parent->keys[li]));
    l->keys.insert(l->keys.end(), std::make_move_iterator(r->keys.begin()),
                   std::make_move_iterator(r->keys.end()));
    l->children.insert(l->children.end(),
                       std::make_move_iterator(r->children.begin()),
                       std::make_move_iterator(r->children.end()));
  }
  parent->keys.erase(parent->keys.begin() + li);
  parent->children.erase(parent->children.begin() + li + 1);
}

bool BTree::EraseRec(Node* node, const Key& key) {
  if (node->leaf) {
    const size_t pos = KeyLowerBound(node->keys, key);
    if (pos >= node->keys.size() || node->keys[pos] != key) return false;
    node->keys.erase(node->keys.begin() + pos);
    node->vals.erase(node->vals.begin() + pos);
    return true;
  }
  const size_t idx = KeyUpperBound(node->keys, key);
  Node* child = node->children[idx].get();
  if (!EraseRec(child, key)) return false;
  const bool underfull = child->leaf ? child->keys.size() < kMinLeafKeys
                                     : child->children.size() < kMinChildren;
  if (underfull) FixUnderflow(node, idx);
  return true;
}

bool BTree::Erase(const Key& key) {
  if (!EraseRec(root_.get(), key)) return false;
  --size_;
  if (!root_->leaf && root_->children.size() == 1) {
    root_ = std::move(root_->children[0]);
  }
  return true;
}

const BTree::Key& BTree::Iterator::key() const {
  return leaf_->keys[pos_];
}

const BTree::Payload& BTree::Iterator::payload() const {
  return leaf_->vals[pos_];
}

void BTree::Iterator::Next() {
  DCG_CHECK(Valid());
  ++pos_;
  while (leaf_ != nullptr && pos_ >= leaf_->keys.size()) {
    leaf_ = leaf_->next;
    pos_ = 0;
  }
}

BTree::Iterator BTree::Begin() const {
  const Node* node = root_.get();
  while (!node->leaf) node = node->children.front().get();
  // Leaves other than a root leaf are never empty (min occupancy), but an
  // empty tree has an empty root leaf.
  if (node->keys.empty()) return Iterator(nullptr, 0);
  return Iterator(node, 0);
}

BTree::Iterator BTree::LowerBound(const Key& key) const {
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children[KeyUpperBound(node->keys, key)].get();
  }
  size_t pos = KeyLowerBound(node->keys, key);
  Iterator it(node, pos);
  if (pos >= node->keys.size()) {
    it.leaf_ = node->next;
    it.pos_ = 0;
    while (it.leaf_ != nullptr && it.leaf_->keys.empty()) {
      it.leaf_ = it.leaf_->next;
    }
  }
  return it;
}

int BTree::ComparePrefix(const doc::Value* const* prefix, size_t n,
                         const Key& key) {
  if (!key.is_array()) {
    // Rank-order comparison against a non-array key: Array sorts after
    // everything but Object in the canonical Value order.
    return key.is_object() ? -1 : 1;
  }
  const doc::Array& b = key.as_array();
  const size_t m = std::min(n, b.size());
  for (size_t i = 0; i < m; ++i) {
    const int c = prefix[i]->Compare(b[i]);
    if (c != 0) return c;
  }
  return n < b.size() ? -1 : (n > b.size() ? 1 : 0);
}

int BTree::ComparePrefixTruncated(const doc::Value* const* prefix, size_t n,
                                  const Key& key) {
  if (!key.is_array()) {
    return key.is_object() ? -1 : 1;
  }
  const doc::Array& b = key.as_array();
  const size_t m = std::min(n, b.size());
  for (size_t i = 0; i < m; ++i) {
    const int c = prefix[i]->Compare(b[i]);
    if (c != 0) return c;
  }
  return n > b.size() ? 1 : 0;  // key components beyond n are ignored
}

BTree::Iterator BTree::LowerBoundPrefix(const doc::Value* const* prefix,
                                        size_t n) const {
  // Mirrors LowerBound, with the prefix taking the probe key's place:
  // descend through the child whose range may hold the first key >= prefix,
  // then binary-search the leaf.
  const Node* node = root_.get();
  while (!node->leaf) {
    size_t lo = 0, hi = node->keys.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (ComparePrefix(prefix, n, node->keys[mid]) < 0) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    node = node->children[lo].get();
  }
  size_t lo = 0, hi = node->keys.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (ComparePrefix(prefix, n, node->keys[mid]) <= 0) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  Iterator it(node, lo);
  if (lo >= node->keys.size()) {
    it.leaf_ = node->next;
    it.pos_ = 0;
    while (it.leaf_ != nullptr && it.leaf_->keys.empty()) {
      it.leaf_ = it.leaf_->next;
    }
  }
  return it;
}

BTree::Iterator BTree::UpperBound(const Key& key) const {
  Iterator it = LowerBound(key);
  if (it.Valid() && it.key() == key) it.Next();
  return it;
}

int BTree::Height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

struct BTree::CheckState {
  size_t count = 0;
  int leaf_depth = -1;
  const Node* prev_leaf = nullptr;
};

// Recursive structural check. `lo`/`hi` bound the keys permitted in this
// subtree; nullptr means unbounded.
void BTree::CheckNode(const Node* node, const Key* lo, const Key* hi,
                      int depth, bool is_root, CheckState* state) {
  // Keys sorted strictly ascending and within bounds.
  for (size_t i = 0; i < node->keys.size(); ++i) {
    if (i > 0) DCG_CHECK(node->keys[i - 1] < node->keys[i]);
    if (lo != nullptr) DCG_CHECK(*lo <= node->keys[i]);
    if (hi != nullptr) DCG_CHECK(node->keys[i] < *hi);
  }
  if (node->leaf) {
    DCG_CHECK(node->vals.size() == node->keys.size());
    DCG_CHECK(node->children.empty());
    if (!is_root) DCG_CHECK(node->keys.size() >= kMinLeafKeys);
    DCG_CHECK(node->keys.size() <= kMaxLeafKeys);
    if (state->leaf_depth < 0) {
      state->leaf_depth = depth;
    } else {
      DCG_CHECK(state->leaf_depth == depth);
    }
    // Leaf chain stitches leaves left-to-right.
    DCG_CHECK(node->prev == state->prev_leaf);
    if (state->prev_leaf != nullptr) {
      DCG_CHECK(state->prev_leaf->next == node);
    }
    state->prev_leaf = node;
    state->count += node->keys.size();
    return;
  }
  DCG_CHECK(node->children.size() == node->keys.size() + 1);
  if (!is_root) DCG_CHECK(node->children.size() >= kMinChildren);
  DCG_CHECK(node->children.size() <= kMaxChildren);
  for (size_t i = 0; i < node->children.size(); ++i) {
    const doc::Value* child_lo = (i == 0) ? lo : &node->keys[i - 1];
    const doc::Value* child_hi = (i == node->keys.size()) ? hi : &node->keys[i];
    CheckNode(node->children[i].get(), child_lo, child_hi, depth + 1,
              /*is_root=*/false, state);
  }
}

void BTree::CheckInvariants() const {
  CheckState state;
  CheckNode(root_.get(), nullptr, nullptr, 0, /*is_root=*/true, &state);
  DCG_CHECK(state.count == size_);
  if (state.prev_leaf != nullptr) DCG_CHECK(state.prev_leaf->next == nullptr);
}

}  // namespace dcg::store
