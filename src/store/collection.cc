#include "store/collection.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace dcg::store {
namespace {

const doc::Value& RequireId(const doc::Value& document) {
  DCG_CHECK_MSG(document.is_object(), "documents must be objects");
  const doc::Value* id = document.Find("_id");
  DCG_CHECK_MSG(id != nullptr, "documents must carry an _id field");
  return *id;
}

}  // namespace

Collection::Collection(std::string name) : name_(std::move(name)) {}

doc::Value Collection::IndexKey(const Index& index, const doc::Value& id,
                                const doc::Value& document) {
  doc::Array key;
  key.reserve(index.paths.size() + 1);
  for (const auto& path : index.paths) {
    const doc::Value* v = document.FindPath(path);
    key.push_back(v != nullptr ? *v : doc::Value());
  }
  key.push_back(id);
  return doc::Value(std::move(key));
}

void Collection::IndexDocument(Index* index, const doc::Value& id,
                               const DocPtr& d) {
  const bool inserted = index->tree.Insert(IndexKey(*index, id, *d), d);
  DCG_CHECK_MSG(inserted, "duplicate index entry in %s", index->name.c_str());
}

void Collection::UnindexDocument(Index* index, const doc::Value& id,
                                 const doc::Value& document) {
  const bool erased = index->tree.Erase(IndexKey(*index, id, document));
  DCG_CHECK_MSG(erased, "missing index entry in %s", index->name.c_str());
}

bool Collection::Insert(doc::Value document) {
  const doc::Value id = RequireId(document);
  auto d = std::make_shared<const doc::Value>(std::move(document));
  if (!primary_.Insert(id, d)) return false;
  approx_bytes_ += d->ApproxSize();
  for (auto& index : indexes_) IndexDocument(index.get(), id, d);
  return true;
}

void Collection::Upsert(doc::Value document) {
  const doc::Value id = RequireId(document);
  DocPtr old = primary_.Find(id);
  auto d = std::make_shared<const doc::Value>(std::move(document));
  if (old != nullptr) {
    approx_bytes_ -= old->ApproxSize();
    for (auto& index : indexes_) UnindexDocument(index.get(), id, *old);
  }
  primary_.Upsert(id, d);
  approx_bytes_ += d->ApproxSize();
  for (auto& index : indexes_) IndexDocument(index.get(), id, d);
}

DocPtr Collection::FindById(const doc::Value& id) const {
  return primary_.Find(id);
}

bool Collection::Update(const doc::Value& id, const doc::UpdateSpec& spec) {
  DocPtr old = primary_.Find(id);
  if (old == nullptr) return false;
  doc::Value updated = *old;  // copy-on-write
  const bool ok = spec.Apply(&updated);
  DCG_CHECK_MSG(ok, "update spec failed on %s._id=%s", name_.c_str(),
                id.ToJson().c_str());
  DCG_CHECK_MSG(RequireId(updated) == id, "updates must not change _id");
  auto d = std::make_shared<const doc::Value>(std::move(updated));
  approx_bytes_ -= old->ApproxSize();
  approx_bytes_ += d->ApproxSize();
  for (auto& index : indexes_) {
    // Re-index only when the indexed tuple changed.
    doc::Value old_key = IndexKey(*index, id, *old);
    doc::Value new_key = IndexKey(*index, id, *d);
    if (old_key != new_key) {
      const bool erased = index->tree.Erase(old_key);
      DCG_CHECK(erased);
      const bool inserted = index->tree.Insert(std::move(new_key), d);
      DCG_CHECK(inserted);
    } else {
      index->tree.Upsert(std::move(new_key), d);
    }
  }
  primary_.Upsert(id, std::move(d));
  return true;
}

bool Collection::Remove(const doc::Value& id) {
  DocPtr old = primary_.Find(id);
  if (old == nullptr) return false;
  approx_bytes_ -= old->ApproxSize();
  for (auto& index : indexes_) UnindexDocument(index.get(), id, *old);
  primary_.Erase(id);
  return true;
}

void Collection::CreateIndex(std::string index_name,
                             std::vector<std::string> paths) {
  DCG_CHECK_MSG(!HasIndex(index_name), "index %s already exists",
                index_name.c_str());
  auto index = std::make_unique<Index>();
  index->name = std::move(index_name);
  index->paths.assign(paths.begin(), paths.end());
  for (auto it = primary_.Begin(); it.Valid(); it.Next()) {
    IndexDocument(index.get(), it.key(), it.payload());
  }
  indexes_.push_back(std::move(index));
}

std::vector<std::pair<std::string, std::vector<std::string>>>
Collection::IndexSpecs() const {
  std::vector<std::pair<std::string, std::vector<std::string>>> specs;
  specs.reserve(indexes_.size());
  for (const auto& index : indexes_) {
    std::vector<std::string> paths;
    paths.reserve(index->paths.size());
    for (const auto& path : index->paths) paths.push_back(path.str());
    specs.emplace_back(index->name, std::move(paths));
  }
  return specs;
}

bool Collection::HasIndex(const std::string& index_name) const {
  for (const auto& index : indexes_) {
    if (index->name == index_name) return true;
  }
  return false;
}

template <typename Visit>
void Collection::VisitMatches(const doc::Filter& filter, Visit&& visit) const {
  // Point lookup through the primary key.
  if (const doc::Value* id = filter.EqualityValue("_id"); id != nullptr) {
    DocPtr d = primary_.Find(*id);
    if (d != nullptr && filter.Matches(*d)) visit(d);
    return;
  }

  // Equality over a full secondary-index prefix. The pinned values are
  // borrowed from the filter itself, so probing allocates nothing.
  for (const auto& index : indexes_) {
    std::vector<const doc::Value*> prefix;
    prefix.reserve(index->paths.size());
    for (const auto& path : index->paths) {
      const doc::Value* v = filter.EqualityValue(path.str());
      if (v == nullptr) break;
      prefix.push_back(v);
    }
    if (prefix.size() == index->paths.size()) {
      for (auto it = index->tree.LowerBoundPrefix(prefix.data(), prefix.size());
           it.Valid(); it.Next()) {
        if (BTree::ComparePrefixTruncated(prefix.data(), prefix.size(),
                                          it.key()) != 0) {
          break;  // past every tuple extending the prefix
        }
        if (filter.Matches(*it.payload()) && !visit(it.payload())) return;
      }
      return;
    }
  }

  // Full scan in _id order.
  for (auto it = primary_.Begin(); it.Valid(); it.Next()) {
    if (filter.Matches(*it.payload()) && !visit(it.payload())) return;
  }
}

std::vector<DocPtr> Collection::Find(const doc::Filter& filter,
                                     size_t limit) const {
  std::vector<DocPtr> out;
  if (limit == 0) return out;
  VisitMatches(filter, [&out, limit](const DocPtr& d) {
    out.push_back(d);
    return out.size() < limit;
  });
  return out;
}

size_t Collection::Count(const doc::Filter& filter) const {
  size_t n = 0;
  VisitMatches(filter, [&n](const DocPtr&) {
    ++n;
    return true;
  });
  return n;
}

std::vector<doc::Value> Collection::FindWith(const doc::Filter& filter,
                                             const FindOptions& options) const {
  // Match (bounded early only when no sort reorders the results).
  std::vector<DocPtr> matches =
      Find(filter, options.sort_path.empty() ? options.limit : SIZE_MAX);

  if (!options.sort_path.empty()) {
    // Extract each document's sort key exactly once, then order decorated
    // (key, input-position) entries: the position tie-break makes the
    // comparator a strict total order, so partial_sort/sort reproduce the
    // previous stable_sort semantics bit-for-bit while a top-k heap sort
    // does O(n log k) work instead of a full O(n log n) pass.
    static const doc::Value kNull;
    struct SortEntry {
      const doc::Value* key;
      size_t pos;
    };
    std::vector<SortEntry> entries;
    entries.reserve(matches.size());
    for (size_t i = 0; i < matches.size(); ++i) {
      const doc::Value* key = matches[i]->FindPath(options.sort_path);
      entries.push_back({key != nullptr ? key : &kNull, i});
    }
    const bool descending = options.sort_descending;
    auto before = [descending](const SortEntry& a, const SortEntry& b) {
      int c = a.key->Compare(*b.key);
      if (descending) c = -c;
      if (c != 0) return c < 0;
      return a.pos < b.pos;  // ties keep input (_id / index) order
    };
    if (options.limit < entries.size()) {
      std::partial_sort(entries.begin(), entries.begin() + options.limit,
                        entries.end(), before);
      entries.resize(options.limit);
    } else {
      std::sort(entries.begin(), entries.end(), before);
    }
    std::vector<DocPtr> ordered;
    ordered.reserve(entries.size());
    for (const SortEntry& e : entries) {
      ordered.push_back(std::move(matches[e.pos]));
    }
    matches = std::move(ordered);
  }

  std::vector<doc::Value> out;
  out.reserve(matches.size());
  for (const DocPtr& d : matches) {
    if (options.projection.empty()) {
      out.push_back(*d);
      continue;
    }
    doc::Value projected{doc::Object{}};
    if (const doc::Value* id = d->Find("_id"); id != nullptr) {
      projected.Set("_id", *id);
    }
    for (const std::string& field : options.projection) {
      if (field == "_id") continue;
      if (const doc::Value* v = d->Find(field); v != nullptr) {
        projected.Set(field, *v);
      }
    }
    out.push_back(std::move(projected));
  }
  return out;
}

std::vector<DocPtr> Collection::RangeById(const doc::Value& low,
                                          const doc::Value& high,
                                          size_t limit) const {
  std::vector<DocPtr> out;
  for (auto it = primary_.LowerBound(low); it.Valid() && out.size() < limit;
       it.Next()) {
    if (it.key() > high) break;
    out.push_back(it.payload());
  }
  return out;
}

std::vector<DocPtr> Collection::IndexScan(
    const std::string& index_name, const std::vector<doc::Value>& low_prefix,
    const std::vector<doc::Value>& high_prefix, size_t limit) const {
  const Index* index = nullptr;
  for (const auto& candidate : indexes_) {
    if (candidate->name == index_name) {
      index = candidate.get();
      break;
    }
  }
  DCG_CHECK_MSG(index != nullptr, "no index named %s on %s",
                index_name.c_str(), name_.c_str());
  DCG_CHECK(low_prefix.size() <= index->paths.size());
  DCG_CHECK(high_prefix.size() <= index->paths.size());

  std::vector<DocPtr> out;
  // An Array that is a strict prefix of another compares less, so the low
  // prefix itself is a valid inclusive lower bound. The probe borrows the
  // caller's values — no temporary Array key is materialized.
  std::vector<const doc::Value*> low;
  low.reserve(low_prefix.size());
  for (const auto& v : low_prefix) low.push_back(&v);
  std::vector<const doc::Value*> high;
  high.reserve(high_prefix.size());
  for (const auto& v : high_prefix) high.push_back(&v);
  for (auto it = index->tree.LowerBoundPrefix(low.data(), low.size());
       it.Valid() && out.size() < limit; it.Next()) {
    // Stop once the indexed tuple exceeds the high prefix.
    if (BTree::ComparePrefixTruncated(high.data(), high.size(), it.key()) < 0) {
      break;
    }
    out.push_back(it.payload());
  }
  return out;
}

void Collection::ForEach(
    const std::function<bool(const doc::Value&, const DocPtr&)>& fn) const {
  for (auto it = primary_.Begin(); it.Valid(); it.Next()) {
    if (!fn(it.key(), it.payload())) return;
  }
}

void Collection::CheckInvariants() const {
  primary_.CheckInvariants();
  for (const auto& index : indexes_) {
    index->tree.CheckInvariants();
    DCG_CHECK_MSG(index->tree.size() == primary_.size(),
                  "index %s size mismatch", index->name.c_str());
    // Every index entry points at the live document and its key matches the
    // document's current field values.
    for (auto it = index->tree.Begin(); it.Valid(); it.Next()) {
      const doc::Array& key = it.key().as_array();
      const doc::Value& id = key.back();
      DocPtr live = primary_.Find(id);
      DCG_CHECK(live != nullptr);
      DCG_CHECK(live.get() == it.payload().get());
      DCG_CHECK(IndexKey(*index, id, *live) == it.key());
    }
  }
}

}  // namespace dcg::store
