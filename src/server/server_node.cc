#include "server/server_node.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace dcg::server {

ServerNode::ServerNode(sim::EventLoop* loop, sim::Rng rng, ServerParams params,
                       net::HostId host, std::string name)
    : loop_(loop),
      rng_(std::move(rng)),
      params_(params),
      host_(host),
      name_(std::move(name)),
      cpu_(loop, params.cores) {}

void ServerNode::Start() {
  loop_->ScheduleAfter(params_.checkpoint_interval,
                       [this] { RunCheckpointCycle(); });
}

bool ServerNode::checkpointing() const {
  return checkpoint_end_ > loop_->Now();
}

void ServerNode::Execute(OpClass c, std::function<void()> done) {
  ExecuteScaled(c, 1.0, std::move(done));
}

void ServerNode::ExecuteScaled(OpClass c, double multiplier,
                               std::function<void()> done) {
  ops_executed_[static_cast<int>(c)]++;
  const auto service = static_cast<sim::Duration>(
      static_cast<double>(SampleService(c)) * multiplier);
  ExecuteWithCost(service, std::move(done));
}

sim::Duration ServerNode::SampleService(OpClass c) {
  return params_.service.Sample(c, &rng_);
}

void ServerNode::ExecuteWithCost(sim::Duration base_service,
                                 std::function<void()> done) {
  sim::Duration service = base_service;
  if (checkpointing()) {
    service = static_cast<sim::Duration>(static_cast<double>(service) *
                                         params_.checkpoint_slowdown);
  }
  if (fault_slowdown_ != 1.0) {
    service = static_cast<sim::Duration>(static_cast<double>(service) *
                                         fault_slowdown_);
  }
  cpu_.Submit(service, std::move(done));
}

void ServerNode::AddDirtyBytes(uint64_t logical_bytes) {
  dirty_bytes_ += static_cast<uint64_t>(static_cast<double>(logical_bytes) *
                                        params_.write_amplification);
}

void ServerNode::RunCheckpointCycle() {
  if (dirty_bytes_ > 0) {
    const double seconds =
        static_cast<double>(dirty_bytes_) / params_.checkpoint_disk_bw;
    checkpoint_duration_ =
        std::min(sim::Seconds(seconds), params_.checkpoint_max);
    checkpoint_end_ = loop_->Now() + checkpoint_duration_;
    dirty_bytes_ = 0;
    loop_->ScheduleAt(checkpoint_end_, [this] { ++checkpoints_completed_; });
  }
  loop_->ScheduleAfter(params_.checkpoint_interval,
                       [this] { RunCheckpointCycle(); });
}

}  // namespace dcg::server
