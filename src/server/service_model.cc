#include "server/service_model.h"

#include "util/check.h"

namespace dcg::server {

std::string_view OpClassName(OpClass c) {
  switch (c) {
    case OpClass::kPointRead:
      return "point_read";
    case OpClass::kInsert:
      return "insert";
    case OpClass::kUpdate:
      return "update";
    case OpClass::kRemove:
      return "remove";
    case OpClass::kGetMore:
      return "get_more";
    case OpClass::kOplogApply:
      return "oplog_apply";
    case OpClass::kServerStatus:
      return "server_status";
    case OpClass::kTpccStockLevel:
      return "tpcc_stock_level";
    case OpClass::kTpccNewOrder:
      return "tpcc_new_order";
    case OpClass::kTpccPayment:
      return "tpcc_payment";
    case OpClass::kTpccOrderStatus:
      return "tpcc_order_status";
    case OpClass::kTpccDelivery:
      return "tpcc_delivery";
    case OpClass::kCount:
      break;
  }
  return "unknown";
}

bool IsReadOnly(OpClass c) {
  switch (c) {
    case OpClass::kPointRead:
    case OpClass::kGetMore:
    case OpClass::kServerStatus:
    case OpClass::kTpccStockLevel:
    case OpClass::kTpccOrderStatus:
      return true;
    default:
      return false;
  }
}

sim::Duration ServiceModel::Mean(OpClass c) const {
  switch (c) {
    case OpClass::kPointRead:
      return point_read;
    case OpClass::kInsert:
      return insert;
    case OpClass::kUpdate:
      return update;
    case OpClass::kRemove:
      return remove;
    case OpClass::kGetMore:
      return get_more;
    case OpClass::kOplogApply:
      return oplog_apply;
    case OpClass::kServerStatus:
      return server_status;
    case OpClass::kTpccStockLevel:
      return tpcc_stock_level;
    case OpClass::kTpccNewOrder:
      return tpcc_new_order;
    case OpClass::kTpccPayment:
      return tpcc_payment;
    case OpClass::kTpccOrderStatus:
      return tpcc_order_status;
    case OpClass::kTpccDelivery:
      return tpcc_delivery;
    case OpClass::kCount:
      break;
  }
  DCG_CHECK_MSG(false, "bad op class");
  return 0;
}

sim::Duration ServiceModel::Sample(OpClass c, sim::Rng* rng) const {
  const sim::Duration mean = Mean(c);
  if (sigma <= 0.0) return mean;
  const double sampled = rng->LogNormal(static_cast<double>(mean), sigma);
  return static_cast<sim::Duration>(sampled);
}

}  // namespace dcg::server
