#ifndef DCG_SERVER_CPU_QUEUE_H_
#define DCG_SERVER_CPU_QUEUE_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/event_loop.h"
#include "sim/time.h"

namespace dcg::server {

/// A c-server FIFO queue modelling a node's CPUs.
///
/// Jobs carry a pre-sampled service time. When a core is free the job runs
/// immediately; otherwise it waits in arrival order. Queueing delay under
/// load is the congestion signal the whole paper is about: a saturated
/// primary inflates the *server-side* component of read latency, which the
/// Read Balancer detects by subtracting network RTT from client-observed
/// latency.
class CpuQueue {
 public:
  CpuQueue(sim::EventLoop* loop, int cores);

  CpuQueue(const CpuQueue&) = delete;
  CpuQueue& operator=(const CpuQueue&) = delete;

  /// Enqueues a job; `done` runs when its service completes.
  void Submit(sim::Duration service_time, std::function<void()> done);

  int cores() const { return cores_; }
  int busy_cores() const { return busy_; }
  size_t queue_length() const { return waiting_.size(); }

  /// Cumulative busy core-time, for utilization accounting.
  sim::Duration total_busy_time() const { return total_busy_time_; }

  /// Mean utilization in [0, 1] over the window since the last call to
  /// ResetUtilizationWindow().
  double WindowUtilization() const;
  void ResetUtilizationWindow();

 private:
  struct Job {
    sim::Duration service_time;
    std::function<void()> done;
  };

  void StartJob(Job job);
  void OnJobDone();

  sim::EventLoop* loop_;
  int cores_;
  int busy_ = 0;
  std::deque<Job> waiting_;
  sim::Duration total_busy_time_ = 0;
  sim::Time window_start_ = 0;
  sim::Duration window_busy_start_ = 0;
};

}  // namespace dcg::server

#endif  // DCG_SERVER_CPU_QUEUE_H_
