#ifndef DCG_SERVER_SERVER_NODE_H_
#define DCG_SERVER_SERVER_NODE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "net/network.h"
#include "server/cpu_queue.h"
#include "server/service_model.h"
#include "sim/event_loop.h"
#include "sim/random.h"
#include "store/database.h"

namespace dcg::server {

/// Knobs of a single database node (one replica-set member).
struct ServerParams {
  int cores = 8;  // mirrors the r4.2xlarge's 8 vCPUs
  ServiceModel service;

  // Checkpoint / disk model (§4.5): dirty data accumulates with writes;
  // every `checkpoint_interval` the node flushes it at
  // `checkpoint_disk_bw` bytes/sec. While flushing, all service times are
  // multiplied by `checkpoint_slowdown`, and if the flush is long enough
  // (heavy write workloads) the replica set additionally blocks oplog
  // reads — see ReplicaSetParams::getmore_block_threshold.
  sim::Duration checkpoint_interval = sim::Seconds(60);
  double checkpoint_disk_bw = 20.0e6;  // bytes/sec
  sim::Duration checkpoint_max = sim::Seconds(35);
  double checkpoint_slowdown = 2.5;
  // Multiplier from logical document bytes to dirty bytes (page-level
  // write amplification).
  double write_amplification = 4.0;
};

/// One simulated machine: CPUs + disk/checkpoint state + the local
/// document database replica.
class ServerNode {
 public:
  ServerNode(sim::EventLoop* loop, sim::Rng rng, ServerParams params,
             net::HostId host, std::string name);

  ServerNode(const ServerNode&) = delete;
  ServerNode& operator=(const ServerNode&) = delete;

  /// Begins the periodic checkpoint cycle.
  void Start();

  const std::string& name() const { return name_; }
  net::HostId host() const { return host_; }
  store::Database& db() { return db_; }
  const store::Database& db() const { return db_; }
  CpuQueue& cpu() { return cpu_; }
  const ServerParams& params() const { return params_; }

  /// Queues one operation of class `c`; `done` fires when its CPU service
  /// completes. The sampled service time is stretched while a checkpoint
  /// is running.
  void Execute(OpClass c, std::function<void()> done);

  /// Like Execute, with the sampled service time multiplied by
  /// `multiplier` (used by replication flow control to throttle writes).
  void ExecuteScaled(OpClass c, double multiplier, std::function<void()> done);

  /// Queues work with an explicit pre-scaled service time (used for
  /// batched oplog application, where cost is per entry). Not counted in
  /// per-class op stats.
  void ExecuteWithCost(sim::Duration base_service, std::function<void()> done);

  /// Samples a service time for `c` from this node's service model.
  sim::Duration SampleService(OpClass c);

  /// Records logical bytes written; amplified into dirty bytes for the
  /// next checkpoint.
  void AddDirtyBytes(uint64_t logical_bytes);

  /// Fault hook: multiplies every service time on this node (a degraded
  /// machine — noisy neighbour, thermal throttling, GC pauses). 1.0 is
  /// healthy. Composes with the checkpoint slowdown.
  void set_fault_slowdown(double factor) { fault_slowdown_ = factor; }
  double fault_slowdown() const { return fault_slowdown_; }

  bool checkpointing() const;
  /// End time of the in-progress checkpoint (valid while checkpointing()).
  sim::Time checkpoint_end() const { return checkpoint_end_; }
  /// Planned duration of the in-progress checkpoint.
  sim::Duration checkpoint_duration() const { return checkpoint_duration_; }

  uint64_t ops_executed(OpClass c) const {
    return ops_executed_[static_cast<int>(c)];
  }
  uint64_t dirty_bytes() const { return dirty_bytes_; }
  uint64_t checkpoints_completed() const { return checkpoints_completed_; }

 private:
  void RunCheckpointCycle();

  sim::EventLoop* loop_;
  sim::Rng rng_;
  ServerParams params_;
  net::HostId host_;
  std::string name_;
  store::Database db_;
  CpuQueue cpu_;

  double fault_slowdown_ = 1.0;
  uint64_t dirty_bytes_ = 0;
  sim::Time checkpoint_end_ = -1;
  sim::Duration checkpoint_duration_ = 0;
  uint64_t checkpoints_completed_ = 0;
  uint64_t ops_executed_[static_cast<int>(OpClass::kCount)] = {};
};

}  // namespace dcg::server

#endif  // DCG_SERVER_SERVER_NODE_H_
