#ifndef DCG_SERVER_COMMAND_SERVICE_H_
#define DCG_SERVER_COMMAND_SERVICE_H_

#include <cstdint>
#include <functional>

#include "net/network.h"
#include "obs/trace.h"
#include "proto/command.h"
#include "repl/oplog.h"
#include "repl/txn.h"
#include "server/server_node.h"
#include "sim/event_loop.h"

namespace dcg::server {

/// Outcome of a write commit attempt at the replication layer.
struct WriteOutcome {
  /// False: the node lost the primary role (crash, election) before the
  /// transaction body ran — nothing was applied, safe to retry elsewhere.
  bool ok = false;
  /// Valid when ok: whether the transaction committed (false = aborted).
  bool committed = false;
  /// The commit point (primary lastApplied after the transaction).
  repl::OpTime operation_time;
};

/// The replication-layer surface a CommandService dispatches into.
/// Implemented by repl::ReplicaSet; kept narrow so server/ does not
/// depend on replica-set internals.
class CommandBackend {
 public:
  virtual ~CommandBackend() = default;

  virtual bool NodeAlive(int idx) const = 0;
  /// Node `idx`'s own belief about who holds the primary role — term-
  /// scoped under raft elections (each member answers from its topology
  /// coordinator; -1 while no writable leader is known), the global
  /// primary index otherwise. It may name a dead node between a crash and
  /// the next election — exactly the window hello exposes.
  virtual int NodeBelievedPrimary(int idx) const = 0;
  /// The election term node `idx` currently believes in. Piggybacked on
  /// every reply so drivers can order topology views.
  virtual uint64_t NodeTerm(int idx) const = 0;
  virtual repl::OpTime NodeLastApplied(int idx) const = 0;
  virtual const store::Database& NodeData(int idx) const = 0;
  virtual ServerNode& NodeServer(int idx) = 0;

  /// Commits a write transaction at node `node` — the member the command
  /// arrived at, which believes itself primary. The commit executes on
  /// that node's CPU and fails (ok=false) if it no longer leads the data
  /// plane at the commit instant, so at most one node can commit per
  /// term. `op_id != 0` enables retryable-write dedup: a re-sent op_id
  /// whose first attempt already committed is acknowledged from the
  /// transaction record instead of being applied twice.
  /// `cost_scale` multiplies the transaction's CPU service sample — 1.0
  /// for singleton commands, the envelope_op_fraction discount for
  /// members of a batched envelope.
  virtual void CommitWrite(int node, OpClass op_class, proto::TxnBody body,
                           repl::WriteConcern concern, uint64_t op_id,
                           double cost_scale,
                           std::function<void(const WriteOutcome&)> done) = 0;

  /// Primary-side replication-progress snapshot (serverStatus payload).
  virtual proto::ServerStatusReply ServerStatusSnapshot() = 0;
};

/// Per-node wire-protocol dispatcher: receives typed proto::Commands off
/// the network, runs them through the node's CPU queue and the local
/// store (or the replication layer, for writes), and ships the typed
/// reply back to the issuing client. This is the mongod command layer of
/// the model — the driver never touches replica-set internals; everything
/// it learns (topology, progress, data) arrives as a Reply.
///
/// Crash semantics match the rest of the repo: a command *arriving* at a
/// dead node is silently dropped (the TCP connection would have reset —
/// the client's attempt timeout notices), but operations already in
/// service when the node dies still complete, and their replies race the
/// failure.
class CommandService {
 public:
  /// Sharding admission check, run when a find/write begins dispatch —
  /// BEFORE any body executes, so a rejected write applies nothing.
  /// Returns false to reject the command with kStaleConfig (the command's
  /// RouteInfo named a chunk/version this shard no longer owns).
  using AdmissionCheck = std::function<bool(const proto::Command&)>;

  CommandService(sim::EventLoop* loop, net::Network* network,
                 CommandBackend* backend, int node_index, net::HostId host);

  CommandService(const CommandService&) = delete;
  CommandService& operator=(const CommandService&) = delete;

  /// Entry point the CommandBus dispatches into at message delivery.
  void Handle(proto::Command command);

  /// Entry point for batched envelopes: charges one envelope_base CPU cost
  /// up front, then dispatches each member through Handle with the
  /// envelope_op_fraction discount stamped into its cost_scale. A dead
  /// node drops the whole envelope (one connection reset kills the batch —
  /// every member's client-side deadline notices).
  void HandleEnvelope(proto::Envelope envelope);

  /// Attaches the run's span tracer (nullptr detaches). Server-side spans
  /// — request wire transit, afterClusterTime parking, CPU service — are
  /// recorded under the client attempt span the command named.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Installs the sharding admission check (nullptr removes it). Only
  /// versioned commands (route.shard_version != 0) are ever rejected, so
  /// unrouted/internal traffic is unaffected.
  void SetAdmissionCheck(AdmissionCheck check) {
    admission_check_ = std::move(check);
  }

  int node_index() const { return node_; }
  net::HostId host() const { return host_; }
  uint64_t commands_served() const { return commands_served_; }

 private:
  void HandleFind(proto::Command command);
  /// Parks a causal read (afterClusterTime) until the local lastApplied
  /// catches up, polling like a real server's read-concern wait.
  /// `parked_at` is the instant the wait began (for the parking span).
  void WaitForClusterTime(proto::Command command, sim::Time parked_at);
  void ExecuteFind(proto::Command command);
  void HandleWrite(proto::Command command);
  void HandleServerStatus(proto::Command command);

  /// True when this command belongs to a traced client op.
  bool Traced(const proto::OpContext& ctx) const {
    return tracer_ != nullptr && tracer_->enabled() && ctx.parent_span != 0;
  }
  /// Records a server-side interval against the command's trace.
  void RecordSpan(const proto::OpContext& ctx, obs::SpanKind kind,
                  sim::Time start, sim::Time end);

  bool IsPrimaryHere() const;
  proto::HelloReply MakeHello() const;
  /// Fills the envelope (op id, kind, node, hello piggyback) and ships
  /// the reply over the network to the command's reply_to host.
  void SendReply(const proto::Command& command, proto::Reply reply);

  sim::EventLoop* loop_;
  net::Network* network_;
  CommandBackend* backend_;
  const int node_;
  const net::HostId host_;
  uint64_t commands_served_ = 0;
  obs::Tracer* tracer_ = nullptr;
  AdmissionCheck admission_check_;
};

}  // namespace dcg::server

#endif  // DCG_SERVER_COMMAND_SERVICE_H_
