#ifndef DCG_SERVER_SERVICE_MODEL_H_
#define DCG_SERVER_SERVICE_MODEL_H_

#include <string_view>

#include "sim/random.h"
#include "sim/time.h"

namespace dcg::server {

/// Classes of work a node can execute. Client operations and internal
/// replication traffic (getMore, oplog application, serverStatus) share the
/// same CPUs — that sharing is what makes a congested primary slow down
/// log-shipping and grow secondary staleness (§4.5 of the paper).
enum class OpClass {
  kPointRead = 0,
  kInsert,
  kUpdate,
  kRemove,
  kGetMore,       // primary serving a secondary's oplog batch request
  kOplogApply,    // secondary applying one oplog entry
  kServerStatus,  // the diagnostic command Decongestant polls
  kTpccStockLevel,
  kTpccNewOrder,
  kTpccPayment,
  kTpccOrderStatus,
  kTpccDelivery,
  kCount,
};

std::string_view OpClassName(OpClass c);

/// True for transaction/operation classes that do not modify data.
bool IsReadOnly(OpClass c);

/// Mean service times per op class, with log-normal dispersion.
///
/// Defaults are calibrated (see DESIGN.md §5) so the 8-core nodes saturate
/// at the relative client counts where the paper's Figure 5 curves bend
/// (e.g. the ~70 % secondary-read equilibrium for YCSB-B on a 3-node
/// cluster). Absolute values are deliberately ~10× the paper's hardware so
/// a 900-simulated-second experiment stays cheap to run — only the ratios
/// and saturation points matter for the reproduced shapes.
struct ServiceModel {
  sim::Duration point_read = sim::Millis(3.5);
  sim::Duration insert = sim::Millis(5.0);
  sim::Duration update = sim::Millis(5.0);
  sim::Duration remove = sim::Millis(4.5);
  sim::Duration get_more = sim::Millis(2.0);
  sim::Duration oplog_apply = sim::Micros(100);  // parallel batch appliers
  sim::Duration server_status = sim::Millis(1.0);
  sim::Duration tpcc_stock_level = sim::Millis(40.0);
  sim::Duration tpcc_new_order = sim::Millis(15.0);
  sim::Duration tpcc_payment = sim::Millis(8.0);
  sim::Duration tpcc_order_status = sim::Millis(10.0);
  sim::Duration tpcc_delivery = sim::Millis(20.0);

  /// Envelope cost table (driver-side command batching, DESIGN.md
  /// § Batching & amortisation): an envelope of k same-target commands is
  /// charged one fixed `envelope_base` (message framing, dispatch, lock
  /// acquisition — paid once per envelope, no dispersion so the charge
  /// adds no RNG draws) and each member command then costs
  /// `envelope_op_fraction` × its normal per-op service sample. With
  /// base=0 and fraction=1 a k-envelope degenerates to k unbatched
  /// commands; the defaults make a full 16-op envelope cost ~65% of 16
  /// singletons, which is what lifts the Fig. 5 saturation knee.
  sim::Duration envelope_base = sim::Millis(1.5);
  double envelope_op_fraction = 0.60;

  /// Log-normal sigma applied to every sample (0 = deterministic).
  double sigma = 0.30;

  sim::Duration Mean(OpClass c) const;

  /// Samples a service time for one execution of `c`.
  sim::Duration Sample(OpClass c, sim::Rng* rng) const;
};

}  // namespace dcg::server

#endif  // DCG_SERVER_SERVICE_MODEL_H_
