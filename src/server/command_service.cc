#include "server/command_service.h"

#include <utility>

namespace dcg::server {

namespace {
/// Poll interval for a parked causal read waiting on afterClusterTime —
/// the same cadence the old client-side park loop used.
constexpr sim::Duration kClusterTimePoll = sim::Millis(5);
}  // namespace

CommandService::CommandService(sim::EventLoop* loop, net::Network* network,
                               CommandBackend* backend, int node_index,
                               net::HostId host)
    : loop_(loop),
      network_(network),
      backend_(backend),
      node_(node_index),
      host_(host) {}

void CommandService::Handle(proto::Command command) {
  // A dead node is silent: commands arriving after the crash vanish, like
  // connections reset by a downed mongod. Clients notice via timeouts.
  if (!backend_->NodeAlive(node_)) return;
  ++commands_served_;
  switch (command.kind) {
    case proto::CommandKind::kPing:
    case proto::CommandKind::kHello:
      // Answered off the heartbeat executor — no CPU queueing, so
      // topology monitoring stays responsive on a congested node.
      SendReply(command, proto::Reply{});
      return;
    case proto::CommandKind::kFind:
      HandleFind(std::move(command));
      return;
    case proto::CommandKind::kWrite:
      HandleWrite(std::move(command));
      return;
    case proto::CommandKind::kServerStatus:
      HandleServerStatus(std::move(command));
      return;
  }
}

void CommandService::HandleFind(proto::Command command) {
  if (command.require_primary && !IsPrimaryHere()) {
    proto::Reply reply;
    reply.status = proto::ReplyStatus::kNotPrimary;
    SendReply(command, reply);
    return;
  }
  WaitForClusterTime(std::move(command));
}

void CommandService::WaitForClusterTime(proto::Command command) {
  // Node died while the read was parked: abandon it silently (the client
  // attempt timeout takes over).
  if (!backend_->NodeAlive(node_)) return;
  if (backend_->NodeLastApplied(node_).seq <
      command.ctx.after_cluster_time.seq) {
    loop_->ScheduleAfter(kClusterTimePoll,
                         [this, command = std::move(command)]() mutable {
                           WaitForClusterTime(std::move(command));
                         });
    return;
  }
  ExecuteFind(std::move(command));
}

void CommandService::ExecuteFind(proto::Command command) {
  ServerNode& server = backend_->NodeServer(node_);
  const OpClass op_class = command.op_class;
  server.Execute(op_class, [this, command = std::move(command)]() mutable {
    // Ops already in service when a node dies still complete — their
    // replies race the failure, exactly like in-flight responses do.
    command.read_body(backend_->NodeData(node_));
    proto::Reply reply;
    reply.operation_time = backend_->NodeLastApplied(node_);
    reply.from_primary = IsPrimaryHere();
    SendReply(command, reply);
  });
}

void CommandService::HandleWrite(proto::Command command) {
  if (!IsPrimaryHere()) {
    proto::Reply reply;
    reply.status = proto::ReplyStatus::kNotPrimary;
    SendReply(command, reply);
    return;
  }
  proto::TxnBody body = std::move(command.txn_body);
  backend_->CommitWrite(
      command.op_class, std::move(body), command.concern, command.ctx.op_id,
      [this, command = std::move(command)](const WriteOutcome& outcome) {
        proto::Reply reply;
        if (!outcome.ok) {
          // The role was lost before the body ran (crash / election) —
          // nothing was applied; tell the client to go find the primary.
          reply.status = proto::ReplyStatus::kNotPrimary;
        } else {
          reply.committed = outcome.committed;
          reply.operation_time = outcome.operation_time;
        }
        reply.from_primary = IsPrimaryHere();
        SendReply(command, reply);
      });
}

void CommandService::HandleServerStatus(proto::Command command) {
  if (!IsPrimaryHere()) {
    proto::Reply reply;
    reply.status = proto::ReplyStatus::kNotPrimary;
    SendReply(command, reply);
    return;
  }
  ServerNode& server = backend_->NodeServer(node_);
  server.Execute(OpClass::kServerStatus,
                 [this, command = std::move(command)]() mutable {
                   proto::Reply reply;
                   reply.server_status = backend_->ServerStatusSnapshot();
                   reply.operation_time = backend_->NodeLastApplied(node_);
                   reply.from_primary = IsPrimaryHere();
                   SendReply(command, reply);
                 });
}

bool CommandService::IsPrimaryHere() const {
  return backend_->PrimaryIndexHint() == node_;
}

proto::HelloReply CommandService::MakeHello() const {
  proto::HelloReply hello;
  hello.node_index = node_;
  hello.is_primary = IsPrimaryHere();
  hello.primary_index = backend_->PrimaryIndexHint();
  hello.term = backend_->CurrentTerm();
  hello.last_applied = backend_->NodeLastApplied(node_);
  return hello;
}

void CommandService::SendReply(const proto::Command& command,
                               proto::Reply reply) {
  reply.op_id = command.ctx.op_id;
  reply.kind = command.kind;
  reply.node_index = node_;
  reply.is_hedge = command.ctx.is_hedge;
  reply.conn_id = command.ctx.conn_id;
  // Every reply piggybacks a hello snapshot, so drivers refresh their
  // topology view from whatever traffic flows (a kNotPrimary reply names
  // the real primary, accelerating failover recovery).
  reply.hello = MakeHello();
  auto on_reply = command.on_reply;
  network_->Send(host_, command.reply_to,
                 [on_reply = std::move(on_reply), reply = std::move(reply)] {
                   if (on_reply) on_reply(reply);
                 });
}

}  // namespace dcg::server
