#include "server/command_service.h"

#include <utility>

namespace dcg::server {

namespace {
/// Poll interval for a parked causal read waiting on afterClusterTime —
/// the same cadence the old client-side park loop used.
constexpr sim::Duration kClusterTimePoll = sim::Millis(5);

/// Runs a structured find against one node's data. A missing collection
/// matches nothing (MongoDB finds against a dropped namespace are empty).
std::shared_ptr<const proto::FindResult> ExecuteFindSpec(
    const proto::FindSpec& spec, const store::Database& db) {
  auto result = std::make_shared<proto::FindResult>();
  const store::Collection* coll = db.Get(spec.collection);
  if (coll == nullptr) return result;
  if (spec.count_only) {
    result->count = coll->Count(spec.filter);
    return result;
  }
  store::FindOptions options;
  options.sort_path = spec.sort_field;
  options.sort_descending = spec.sort_descending;
  options.limit = spec.limit;
  result->docs = coll->FindWith(spec.filter, options);
  result->count = result->docs.size();
  return result;
}
}  // namespace

CommandService::CommandService(sim::EventLoop* loop, net::Network* network,
                               CommandBackend* backend, int node_index,
                               net::HostId host)
    : loop_(loop),
      network_(network),
      backend_(backend),
      node_(node_index),
      host_(host) {}

void CommandService::RecordSpan(const proto::OpContext& ctx,
                                obs::SpanKind kind, sim::Time start,
                                sim::Time end) {
  obs::SpanRecord span;
  span.trace_id = ctx.trace_id != 0 ? ctx.trace_id : ctx.op_id;
  span.span_id = tracer_->NewSpanId();
  span.parent_span_id = ctx.parent_span;
  span.kind = kind;
  span.start = start;
  span.end = end;
  span.node = node_;
  span.attempt = ctx.attempt;
  span.is_hedge = ctx.is_hedge;
  tracer_->Record(span);
}

void CommandService::Handle(proto::Command command) {
  // A dead node is silent: commands arriving after the crash vanish, like
  // connections reset by a downed mongod. Clients notice via timeouts.
  if (!backend_->NodeAlive(node_)) return;
  ++commands_served_;
  // Traced() implies the client stamped sent_at (both happen together in
  // SendAttempt), so a sim-start send at t=0 still gets its wire span.
  if (Traced(command.ctx)) {
    RecordSpan(command.ctx, obs::SpanKind::kWire, command.ctx.sent_at,
               loop_->Now());
  }
  switch (command.kind) {
    case proto::CommandKind::kPing:
    case proto::CommandKind::kHello:
      // Answered off the heartbeat executor — no CPU queueing, so
      // topology monitoring stays responsive on a congested node.
      SendReply(command, proto::Reply{});
      return;
    case proto::CommandKind::kFind:
    case proto::CommandKind::kWrite:
      // Sharding admission: a versioned command naming a chunk this shard
      // no longer owns is rejected here, before any body runs — a stale
      // write applies nothing, so the router's re-route cannot duplicate.
      if (admission_check_ && !admission_check_(command)) {
        proto::Reply reply;
        reply.status = proto::ReplyStatus::kStaleConfig;
        SendReply(command, reply);
        return;
      }
      if (command.kind == proto::CommandKind::kFind) {
        HandleFind(std::move(command));
      } else {
        HandleWrite(std::move(command));
      }
      return;
    case proto::CommandKind::kServerStatus:
      HandleServerStatus(std::move(command));
      return;
  }
}

void CommandService::HandleEnvelope(proto::Envelope envelope) {
  if (!backend_->NodeAlive(node_)) return;
  if (envelope.commands.empty()) return;
  ServerNode& server = backend_->NodeServer(node_);
  // One base charge for the whole envelope (message framing, dispatch,
  // lock acquisition), then every member goes through the normal Handle
  // switch carrying the amortisation discount. The discount is stamped
  // here — the cost model is server-owned; drivers never see it.
  const double fraction = server.params().service.envelope_op_fraction;
  server.ExecuteWithCost(
      server.params().service.envelope_base,
      [this, envelope = std::move(envelope), fraction]() mutable {
        for (proto::Command& command : envelope.commands) {
          command.cost_scale = fraction;
          Handle(std::move(command));
        }
      });
}

void CommandService::HandleFind(proto::Command command) {
  if (command.require_primary && !IsPrimaryHere()) {
    proto::Reply reply;
    reply.status = proto::ReplyStatus::kNotPrimary;
    SendReply(command, reply);
    return;
  }
  WaitForClusterTime(std::move(command), loop_->Now());
}

void CommandService::WaitForClusterTime(proto::Command command,
                                        sim::Time parked_at) {
  // Node died while the read was parked: abandon it silently (the client
  // attempt timeout takes over).
  if (!backend_->NodeAlive(node_)) return;
  if (backend_->NodeLastApplied(node_).seq <
      command.ctx.after_cluster_time.seq) {
    loop_->ScheduleAfter(
        kClusterTimePoll,
        [this, command = std::move(command), parked_at]() mutable {
          WaitForClusterTime(std::move(command), parked_at);
        });
    return;
  }
  // Only an actual wait earns a parking span (most reads pass straight
  // through; a zero-length span per read would be noise).
  if (Traced(command.ctx) && loop_->Now() > parked_at) {
    RecordSpan(command.ctx, obs::SpanKind::kServerParking, parked_at,
               loop_->Now());
  }
  ExecuteFind(std::move(command));
}

void CommandService::ExecuteFind(proto::Command command) {
  ServerNode& server = backend_->NodeServer(node_);
  const OpClass op_class = command.op_class;
  const double cost_scale = command.cost_scale;
  const sim::Time enqueued_at = loop_->Now();
  server.ExecuteScaled(op_class, cost_scale,
                       [this, command = std::move(command),
                        enqueued_at]() mutable {
    // Ops already in service when a node dies still complete — their
    // replies race the failure, exactly like in-flight responses do.
    std::shared_ptr<const proto::FindResult> find_result;
    if (command.find_spec != nullptr) {
      find_result = ExecuteFindSpec(*command.find_spec,
                                    backend_->NodeData(node_));
    } else {
      command.read_body(backend_->NodeData(node_));
    }
    if (Traced(command.ctx)) {
      // CPU queueing + service, together: the client-observable server
      // time the Balancer's Lss estimate is trying to recover.
      RecordSpan(command.ctx, obs::SpanKind::kServerService, enqueued_at,
                 loop_->Now());
    }
    proto::Reply reply;
    reply.find_result = std::move(find_result);
    reply.operation_time = backend_->NodeLastApplied(node_);
    reply.from_primary = IsPrimaryHere();
    SendReply(command, reply);
  });
}

void CommandService::HandleWrite(proto::Command command) {
  if (!IsPrimaryHere()) {
    proto::Reply reply;
    reply.status = proto::ReplyStatus::kNotPrimary;
    SendReply(command, reply);
    return;
  }
  proto::TxnBody body = std::move(command.txn_body);
  const sim::Time arrived_at = loop_->Now();
  backend_->CommitWrite(
      node_, command.op_class, std::move(body), command.concern,
      command.ctx.op_id, command.cost_scale,
      [this, command = std::move(command),
       arrived_at](const WriteOutcome& outcome) {
        if (Traced(command.ctx)) {
          // Queue + transaction execution (+ majority wait — the repl
          // layer records that slice separately as commit_wait).
          RecordSpan(command.ctx, obs::SpanKind::kServerService, arrived_at,
                     loop_->Now());
        }
        proto::Reply reply;
        if (!outcome.ok) {
          // The role was lost before the body ran (crash / election) —
          // nothing was applied; tell the client to go find the primary.
          reply.status = proto::ReplyStatus::kNotPrimary;
        } else {
          reply.committed = outcome.committed;
          reply.operation_time = outcome.operation_time;
        }
        reply.from_primary = IsPrimaryHere();
        SendReply(command, reply);
      });
}

void CommandService::HandleServerStatus(proto::Command command) {
  if (!IsPrimaryHere()) {
    proto::Reply reply;
    reply.status = proto::ReplyStatus::kNotPrimary;
    SendReply(command, reply);
    return;
  }
  ServerNode& server = backend_->NodeServer(node_);
  server.Execute(OpClass::kServerStatus,
                 [this, command = std::move(command)]() mutable {
                   proto::Reply reply;
                   reply.server_status = backend_->ServerStatusSnapshot();
                   reply.operation_time = backend_->NodeLastApplied(node_);
                   reply.from_primary = IsPrimaryHere();
                   SendReply(command, reply);
                 });
}

bool CommandService::IsPrimaryHere() const {
  return backend_->NodeBelievedPrimary(node_) == node_;
}

proto::HelloReply CommandService::MakeHello() const {
  proto::HelloReply hello;
  hello.node_index = node_;
  hello.is_primary = IsPrimaryHere();
  hello.primary_index = backend_->NodeBelievedPrimary(node_);
  hello.term = backend_->NodeTerm(node_);
  hello.last_applied = backend_->NodeLastApplied(node_);
  return hello;
}

void CommandService::SendReply(const proto::Command& command,
                               proto::Reply reply) {
  reply.op_id = command.ctx.op_id;
  reply.kind = command.kind;
  reply.node_index = node_;
  reply.is_hedge = command.ctx.is_hedge;
  reply.conn_id = command.ctx.conn_id;
  // Stamped only for traced ops, so the client can record the reply's
  // wire-transit span when it arrives.
  if (Traced(command.ctx)) reply.sent_at = loop_->Now();
  // Every reply piggybacks a hello snapshot, so drivers refresh their
  // topology view from whatever traffic flows (a kNotPrimary reply names
  // the real primary, accelerating failover recovery).
  reply.hello = MakeHello();
  auto on_reply = command.on_reply;
  network_->Send(host_, command.reply_to,
                 [on_reply = std::move(on_reply), reply = std::move(reply)] {
                   if (on_reply) on_reply(reply);
                 });
}

}  // namespace dcg::server
