#include "server/cpu_queue.h"

#include <utility>

#include "util/check.h"

namespace dcg::server {

CpuQueue::CpuQueue(sim::EventLoop* loop, int cores)
    : loop_(loop), cores_(cores) {
  DCG_CHECK(cores >= 1);
}

void CpuQueue::Submit(sim::Duration service_time, std::function<void()> done) {
  if (service_time < 0) service_time = 0;
  Job job{service_time, std::move(done)};
  if (busy_ < cores_) {
    StartJob(std::move(job));
  } else {
    waiting_.push_back(std::move(job));
  }
}

void CpuQueue::StartJob(Job job) {
  ++busy_;
  total_busy_time_ += job.service_time;
  loop_->ScheduleAfter(job.service_time,
                       [this, done = std::move(job.done)]() mutable {
                         OnJobDone();
                         done();
                       });
}

void CpuQueue::OnJobDone() {
  --busy_;
  if (!waiting_.empty()) {
    Job next = std::move(waiting_.front());
    waiting_.pop_front();
    StartJob(std::move(next));
  }
}

double CpuQueue::WindowUtilization() const {
  const sim::Duration window = loop_->Now() - window_start_;
  if (window <= 0) return 0.0;
  const auto busy = static_cast<double>(total_busy_time_ -
                                        window_busy_start_);
  return busy / (static_cast<double>(window) * cores_);
}

void CpuQueue::ResetUtilizationWindow() {
  window_start_ = loop_->Now();
  window_busy_start_ = total_busy_time_;
}

}  // namespace dcg::server
