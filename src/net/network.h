#ifndef DCG_NET_NETWORK_H_
#define DCG_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_loop.h"
#include "sim/random.h"
#include "sim/time.h"

namespace dcg::net {

/// Identifies a host on the simulated network (client host or DB node).
using HostId = int;

/// Point-to-point network model with per-pair round-trip latencies.
///
/// The paper's testbed spreads the replica set across three AWS
/// availability zones; the RTT between the client host and each node
/// differs by under 2 ms, yet §3.3.1 shows this is enough to distort raw
/// client latencies for ~1 ms YCSB reads — which is exactly why the Read
/// Balancer subtracts P50(RTT). We model each directed message as
/// base_rtt/2 plus exponential jitter.
///
/// Fault hooks (driven by fault::FaultInjector): each *directed* pair can
/// carry a LinkFault (extra delay, delay multiplier, drop probability),
/// and pairs can be blocked outright to model partitions. Dropped
/// messages are lost silently, exactly like a real network — protocols
/// above (replication pull chains, heartbeats) must tolerate the loss.
class Network {
 public:
  Network(sim::EventLoop* loop, sim::Rng rng)
      : loop_(loop), rng_(std::move(rng)) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a host. Returns its id.
  HostId AddHost(std::string name);

  const std::string& HostName(HostId h) const { return host_names_.at(h); }
  int host_count() const { return static_cast<int>(host_names_.size()); }

  /// Sets the symmetric base RTT and mean jitter for a host pair.
  void SetLink(HostId a, HostId b, sim::Duration base_rtt,
               sim::Duration jitter_mean);

  /// Base RTT configured for a pair (excludes jitter).
  sim::Duration BaseRtt(HostId a, HostId b) const;

  /// Samples a one-way delay for a message from `a` to `b`.
  sim::Duration SampleOneWay(HostId a, HostId b);

  /// Delivers `fn` at the destination after a sampled one-way delay, or
  /// drops the message (never delivering `fn`) when the directed link is
  /// blocked or its fault's drop probability fires.
  void Send(HostId from, HostId to, std::function<void()> fn);

  /// Simulates an application-level ping: calls `done(rtt)` after a full
  /// round trip (two sampled one-way delays). If either direction drops,
  /// `done` never fires — callers must not depend on it for liveness.
  void Ping(HostId from, HostId to,
            std::function<void(sim::Duration rtt)> done);

  /// Send with an armed liveness timer: delivers `fn` like Send, and
  /// additionally schedules `on_timeout` to fire after `timeout`. The
  /// caller cancels the returned timer (CancelTimeout) when the expected
  /// reply arrives; if the message — or its reply — is silently lost, the
  /// timer fires instead, so the caller always hears *something*.
  sim::EventId SendWithTimeout(HostId from, HostId to,
                               std::function<void()> fn,
                               sim::Duration timeout,
                               std::function<void()> on_timeout);

  /// Cancels a timer returned by SendWithTimeout. Returns false when the
  /// timer already fired (the operation had timed out).
  bool CancelTimeout(sim::EventId timer);

  /// Ping that cannot wedge its caller: `done(true, rtt)` on a completed
  /// round trip, `done(false, 0)` after `timeout` when either direction
  /// dropped the probe (partition, packet loss). Exactly one call, always.
  void PingWithTimeout(HostId from, HostId to, sim::Duration timeout,
                       std::function<void(bool ok, sim::Duration rtt)> done);

  // --- fault hooks ---

  /// Degradation of one *directed* link (a → b message path).
  struct LinkFault {
    /// Added to every sampled one-way delay (a latency spike / WAN
    /// reroute).
    sim::Duration extra_delay = 0;
    /// Multiplies the healthy (base/2 + jitter) delay; >= 0.
    double delay_multiplier = 1.0;
    /// Probability that a message on this link is silently lost.
    double drop_probability = 0.0;
  };

  /// Installs (overwrites) the fault on the directed pair `from` → `to`.
  void SetLinkFault(HostId from, HostId to, const LinkFault& fault);
  /// Removes any fault on the directed pair.
  void ClearLinkFault(HostId from, HostId to);

  /// Blocks all traffic between `a` and `b` (both directions). Blocks are
  /// counted, so overlapping partitions compose: the pair is reachable
  /// again only when every block has been lifted.
  void BlockPair(HostId a, HostId b);
  void UnblockPair(HostId a, HostId b);
  /// False while any block is outstanding on the pair.
  bool Reachable(HostId a, HostId b) const;

  /// Would a message from `a` to `b` be dropped right now? Consumes a
  /// random draw when the link has a drop probability.
  bool ShouldDrop(HostId a, HostId b);

  uint64_t messages_delivered() const { return messages_delivered_; }
  uint64_t messages_dropped() const { return messages_dropped_; }

 private:
  struct Link {
    sim::Duration base_rtt = sim::Millis(0.5);
    sim::Duration jitter_mean = sim::Micros(30);
  };

  const Link& GetLink(HostId a, HostId b) const;
  const LinkFault* GetFault(HostId from, HostId to) const;

  sim::EventLoop* loop_;
  sim::Rng rng_;
  std::vector<std::string> host_names_;
  std::map<std::pair<HostId, HostId>, Link> links_;
  Link default_link_;
  std::map<std::pair<HostId, HostId>, LinkFault> faults_;   // directed
  std::map<std::pair<HostId, HostId>, int> pair_blocks_;    // undirected
  uint64_t messages_delivered_ = 0;
  uint64_t messages_dropped_ = 0;
};

}  // namespace dcg::net

#endif  // DCG_NET_NETWORK_H_
