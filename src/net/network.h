#ifndef DCG_NET_NETWORK_H_
#define DCG_NET_NETWORK_H_

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_loop.h"
#include "sim/random.h"
#include "sim/time.h"

namespace dcg::net {

/// Identifies a host on the simulated network (client host or DB node).
using HostId = int;

/// Point-to-point network model with per-pair round-trip latencies.
///
/// The paper's testbed spreads the replica set across three AWS
/// availability zones; the RTT between the client host and each node
/// differs by under 2 ms, yet §3.3.1 shows this is enough to distort raw
/// client latencies for ~1 ms YCSB reads — which is exactly why the Read
/// Balancer subtracts P50(RTT). We model each directed message as
/// base_rtt/2 plus exponential jitter.
class Network {
 public:
  Network(sim::EventLoop* loop, sim::Rng rng)
      : loop_(loop), rng_(std::move(rng)) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a host. Returns its id.
  HostId AddHost(std::string name);

  const std::string& HostName(HostId h) const { return host_names_.at(h); }
  int host_count() const { return static_cast<int>(host_names_.size()); }

  /// Sets the symmetric base RTT and mean jitter for a host pair.
  void SetLink(HostId a, HostId b, sim::Duration base_rtt,
               sim::Duration jitter_mean);

  /// Base RTT configured for a pair (excludes jitter).
  sim::Duration BaseRtt(HostId a, HostId b) const;

  /// Samples a one-way delay for a message from `a` to `b`.
  sim::Duration SampleOneWay(HostId a, HostId b);

  /// Delivers `fn` at the destination after a sampled one-way delay.
  void Send(HostId from, HostId to, std::function<void()> fn);

  /// Simulates an application-level ping: calls `done(rtt)` after a full
  /// round trip (two sampled one-way delays).
  void Ping(HostId from, HostId to,
            std::function<void(sim::Duration rtt)> done);

 private:
  struct Link {
    sim::Duration base_rtt = sim::Millis(0.5);
    sim::Duration jitter_mean = sim::Micros(30);
  };

  const Link& GetLink(HostId a, HostId b) const;

  sim::EventLoop* loop_;
  sim::Rng rng_;
  std::vector<std::string> host_names_;
  std::map<std::pair<HostId, HostId>, Link> links_;
  Link default_link_;
};

}  // namespace dcg::net

#endif  // DCG_NET_NETWORK_H_
