#include "net/network.h"

#include <algorithm>

#include "util/check.h"

namespace dcg::net {

HostId Network::AddHost(std::string name) {
  host_names_.push_back(std::move(name));
  return static_cast<HostId>(host_names_.size()) - 1;
}

void Network::SetLink(HostId a, HostId b, sim::Duration base_rtt,
                      sim::Duration jitter_mean) {
  const auto key = std::minmax(a, b);
  links_[{key.first, key.second}] = Link{base_rtt, jitter_mean};
}

const Network::Link& Network::GetLink(HostId a, HostId b) const {
  const auto key = std::minmax(a, b);
  auto it = links_.find({key.first, key.second});
  return it == links_.end() ? default_link_ : it->second;
}

const Network::LinkFault* Network::GetFault(HostId from, HostId to) const {
  auto it = faults_.find({from, to});
  return it == faults_.end() ? nullptr : &it->second;
}

void Network::SetLinkFault(HostId from, HostId to, const LinkFault& fault) {
  DCG_CHECK(fault.delay_multiplier >= 0.0);
  DCG_CHECK(fault.drop_probability >= 0.0 && fault.drop_probability <= 1.0);
  faults_[{from, to}] = fault;
}

void Network::ClearLinkFault(HostId from, HostId to) {
  faults_.erase({from, to});
}

void Network::BlockPair(HostId a, HostId b) {
  const auto key = std::minmax(a, b);
  ++pair_blocks_[{key.first, key.second}];
}

void Network::UnblockPair(HostId a, HostId b) {
  const auto key = std::minmax(a, b);
  auto it = pair_blocks_.find({key.first, key.second});
  DCG_CHECK_MSG(it != pair_blocks_.end(), "unblocking a pair never blocked");
  if (--it->second == 0) pair_blocks_.erase(it);
}

bool Network::Reachable(HostId a, HostId b) const {
  const auto key = std::minmax(a, b);
  return pair_blocks_.find({key.first, key.second}) == pair_blocks_.end();
}

bool Network::ShouldDrop(HostId a, HostId b) {
  if (a == b) return false;  // loopback never fails
  if (!Reachable(a, b)) return true;
  const LinkFault* fault = GetFault(a, b);
  if (fault != nullptr && fault->drop_probability > 0.0) {
    return rng_.Bernoulli(fault->drop_probability);
  }
  return false;
}

sim::Duration Network::BaseRtt(HostId a, HostId b) const {
  return GetLink(a, b).base_rtt;
}

sim::Duration Network::SampleOneWay(HostId a, HostId b) {
  if (a == b) return 0;  // loopback
  const Link& link = GetLink(a, b);
  const double jitter =
      rng_.Exponential(static_cast<double>(link.jitter_mean));
  sim::Duration delay =
      link.base_rtt / 2 + static_cast<sim::Duration>(jitter);
  if (const LinkFault* fault = GetFault(a, b)) {
    delay = static_cast<sim::Duration>(static_cast<double>(delay) *
                                       fault->delay_multiplier) +
            fault->extra_delay;
  }
  return delay;
}

void Network::Send(HostId from, HostId to, std::function<void()> fn) {
  if (ShouldDrop(from, to)) {
    ++messages_dropped_;
    return;
  }
  ++messages_delivered_;
  loop_->ScheduleAfter(SampleOneWay(from, to), std::move(fn));
}

void Network::Ping(HostId from, HostId to,
                   std::function<void(sim::Duration)> done) {
  if (ShouldDrop(from, to) || ShouldDrop(to, from)) {
    ++messages_dropped_;
    return;
  }
  ++messages_delivered_;
  const sim::Duration rtt = SampleOneWay(from, to) + SampleOneWay(to, from);
  loop_->ScheduleAfter(rtt, [rtt, done = std::move(done)] { done(rtt); });
}

sim::EventId Network::SendWithTimeout(HostId from, HostId to,
                                      std::function<void()> fn,
                                      sim::Duration timeout,
                                      std::function<void()> on_timeout) {
  const sim::EventId timer =
      loop_->ScheduleAfter(timeout, std::move(on_timeout));
  Send(from, to, std::move(fn));
  return timer;
}

bool Network::CancelTimeout(sim::EventId timer) { return loop_->Cancel(timer); }

void Network::PingWithTimeout(
    HostId from, HostId to, sim::Duration timeout,
    std::function<void(bool, sim::Duration)> done) {
  struct Race {
    bool settled = false;
    sim::EventId timer = 0;
  };
  auto race = std::make_shared<Race>();
  auto shared_done =
      std::make_shared<std::function<void(bool, sim::Duration)>>(
          std::move(done));
  race->timer = loop_->ScheduleAfter(timeout, [race, shared_done] {
    if (race->settled) return;
    race->settled = true;
    (*shared_done)(false, 0);
  });
  Ping(from, to, [this, race, shared_done](sim::Duration rtt) {
    if (race->settled) return;
    race->settled = true;
    loop_->Cancel(race->timer);
    (*shared_done)(true, rtt);
  });
}

}  // namespace dcg::net
