#include "net/network.h"

#include <algorithm>

#include "util/check.h"

namespace dcg::net {

HostId Network::AddHost(std::string name) {
  host_names_.push_back(std::move(name));
  return static_cast<HostId>(host_names_.size()) - 1;
}

void Network::SetLink(HostId a, HostId b, sim::Duration base_rtt,
                      sim::Duration jitter_mean) {
  const auto key = std::minmax(a, b);
  links_[{key.first, key.second}] = Link{base_rtt, jitter_mean};
}

const Network::Link& Network::GetLink(HostId a, HostId b) const {
  const auto key = std::minmax(a, b);
  auto it = links_.find({key.first, key.second});
  return it == links_.end() ? default_link_ : it->second;
}

sim::Duration Network::BaseRtt(HostId a, HostId b) const {
  return GetLink(a, b).base_rtt;
}

sim::Duration Network::SampleOneWay(HostId a, HostId b) {
  if (a == b) return 0;  // loopback
  const Link& link = GetLink(a, b);
  const double jitter =
      rng_.Exponential(static_cast<double>(link.jitter_mean));
  return link.base_rtt / 2 + static_cast<sim::Duration>(jitter);
}

void Network::Send(HostId from, HostId to, std::function<void()> fn) {
  loop_->ScheduleAfter(SampleOneWay(from, to), std::move(fn));
}

void Network::Ping(HostId from, HostId to,
                   std::function<void(sim::Duration)> done) {
  const sim::Duration rtt = SampleOneWay(from, to) + SampleOneWay(to, from);
  loop_->ScheduleAfter(rtt, [rtt, done = std::move(done)] { done(rtt); });
}

}  // namespace dcg::net
