#include "sim/event_loop.h"

#include <utility>

namespace dcg::sim {

namespace {
constexpr size_t kArity = 4;
// Below this heap size a compaction sweep costs more than the tombstones.
constexpr size_t kMinCompactSize = 1024;
}  // namespace

void EventLoop::HeapPush(const Event& ev) {
  // Hole insertion: shift ancestors down into the hole instead of swapping —
  // one write per level plus a final placement.
  size_t i = heap_.size();
  heap_.push_back(ev);
  while (i > 0) {
    const size_t parent = (i - 1) / kArity;
    if (!Sooner(ev, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = ev;
}

void EventLoop::SiftDown(size_t i) {
  const size_t n = heap_.size();
  const Event val = heap_[i];
  for (;;) {
    const size_t first = i * kArity + 1;
    if (first >= n) break;
    const size_t last = first + kArity < n ? first + kArity : n;
    size_t best = first;
    for (size_t c = first + 1; c < last; ++c) {
      if (Sooner(heap_[c], heap_[best])) best = c;
    }
    if (!Sooner(heap_[best], val)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = val;
}

void EventLoop::HeapPop() {
  // Floyd's two-phase pop: walk the hole down the min-child path to a leaf
  // (3 comparisons per level instead of 4 — no comparison against the
  // replacement), then sift the old back element up from the leaf. The back
  // element is usually leaf-grade, so the sift-up almost always stops
  // immediately.
  const size_t n = heap_.size() - 1;
  if (n == 0) {
    heap_.pop_back();
    return;
  }
  const Event val = heap_[n];
  heap_.pop_back();
  size_t i = 0;
  for (;;) {
    const size_t first = i * kArity + 1;
    if (first >= n) break;
    const size_t last = first + kArity < n ? first + kArity : n;
    size_t best = first;
    for (size_t c = first + 1; c < last; ++c) {
      if (Sooner(heap_[c], heap_[best])) best = c;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  while (i > 0) {
    const size_t parent = (i - 1) / kArity;
    if (!Sooner(val, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = val;
}

void EventLoop::CompactIfWorthwhile() {
  if (heap_.size() < kMinCompactSize || stale_in_heap_ <= pending_) return;
  size_t kept = 0;
  for (const Event& ev : heap_) {
    if (!IsStale(ev)) heap_[kept++] = ev;
  }
  heap_.resize(kept);
  stale_in_heap_ = 0;
  if (kept > 1) {
    for (size_t i = (kept - 2) / kArity + 1; i-- > 0;) SiftDown(i);
  }
}

EventId EventLoop::ScheduleAt(Time at, std::function<void()> fn) {
  if (at < now_) at = now_;
  uint32_t slot_idx;
  if (!free_slots_.empty()) {
    slot_idx = free_slots_.back();
    free_slots_.pop_back();
  } else {
    if ((slot_count_ & (kSlabChunkSize - 1)) == 0) {
      slabs_.emplace_back(std::make_unique<Slot[]>(kSlabChunkSize));
    }
    slot_idx = slot_count_++;
  }
  Slot& slot = SlotAt(slot_idx);
  slot.fn = std::move(fn);
  slot.live = true;
  HeapPush(Event{at, next_seq_++, slot_idx, slot.gen});
  ++pending_;
  return MakeId(slot_idx, slot.gen);
}

EventId EventLoop::ScheduleAfter(Duration delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return ScheduleAt(now_ + delay, std::move(fn));
}

void EventLoop::ReleaseSlot(uint32_t slot_idx) {
  Slot& slot = SlotAt(slot_idx);
  slot.fn = nullptr;
  slot.live = false;
  if (++slot.gen == 0) slot.gen = 1;  // 0 stays reserved across wraparound
  free_slots_.push_back(slot_idx);
  --pending_;
}

bool EventLoop::Cancel(EventId id) {
  const uint32_t slot_idx = static_cast<uint32_t>(id >> 32);
  const uint32_t gen = static_cast<uint32_t>(id);
  if (slot_idx >= slot_count_) return false;
  const Slot& slot = SlotAt(slot_idx);
  if (!slot.live || slot.gen != gen) return false;
  ReleaseSlot(slot_idx);
  ++stale_in_heap_;  // the heap entry is now a tombstone
  CompactIfWorthwhile();
  return true;
}

const EventLoop::Event* EventLoop::PeekLive() {
  while (!heap_.empty()) {
    const Event& ev = heap_.front();
    if (!IsStale(ev)) return &ev;
    HeapPop();  // cancelled tombstone
    --stale_in_heap_;
  }
  return nullptr;
}

void EventLoop::Fire(const Event& ev) {
  std::function<void()> fn = std::move(SlotAt(ev.slot).fn);
  const Time at = ev.at;
  const uint32_t slot_idx = ev.slot;
  HeapPop();  // invalidates `ev`
  ReleaseSlot(slot_idx);
  now_ = at;
  fn();
}

bool EventLoop::Step() {
  const Event* ev = PeekLive();
  if (ev == nullptr) return false;
  Fire(*ev);
  return true;
}

uint64_t EventLoop::RunUntil(Time until) {
  uint64_t executed = 0;
  while (const Event* ev = PeekLive()) {
    if (ev->at > until) break;
    Fire(*ev);
    ++executed;
  }
  // Advance the clock to the horizon even if the queue drained early, so
  // repeated RunUntil calls observe monotonically increasing time.
  if (now_ < until) now_ = until;
  return executed;
}

uint64_t EventLoop::RunAll() {
  uint64_t executed = 0;
  while (Step()) ++executed;
  return executed;
}

}  // namespace dcg::sim
