#include "sim/event_loop.h"

#include <utility>

namespace dcg::sim {

EventId EventLoop::ScheduleAt(Time at, std::function<void()> fn) {
  if (at < now_) at = now_;
  const EventId id = next_id_++;
  queue_.push(Event{at, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

EventId EventLoop::ScheduleAfter(Duration delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool EventLoop::Cancel(EventId id) { return callbacks_.erase(id) > 0; }

bool EventLoop::SkipTombstones() {
  while (!queue_.empty() &&
         callbacks_.find(queue_.top().id) == callbacks_.end()) {
    queue_.pop();
  }
  return !queue_.empty();
}

bool EventLoop::Step() {
  if (!SkipTombstones()) return false;
  const Event ev = queue_.top();
  queue_.pop();
  auto it = callbacks_.find(ev.id);
  std::function<void()> fn = std::move(it->second);
  callbacks_.erase(it);
  now_ = ev.at;
  fn();
  return true;
}

uint64_t EventLoop::RunUntil(Time until) {
  uint64_t executed = 0;
  while (SkipTombstones() && queue_.top().at <= until) {
    Step();
    ++executed;
  }
  // Advance the clock to the horizon even if the queue drained early, so
  // repeated RunUntil calls observe monotonically increasing time.
  if (now_ < until) now_ = until;
  return executed;
}

uint64_t EventLoop::RunAll() {
  uint64_t executed = 0;
  while (Step()) ++executed;
  return executed;
}

}  // namespace dcg::sim
