#ifndef DCG_SIM_TIME_H_
#define DCG_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace dcg::sim {

/// Simulated time, in nanoseconds since the start of the simulation.
///
/// All timing in the library is expressed in this unit. The discrete-event
/// kernel advances a single logical clock; nothing in the library reads the
/// wall clock, which keeps every run deterministic for a given seed.
using Time = int64_t;

/// A span of simulated time, also in nanoseconds.
using Duration = int64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1000 * kNanosecond;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;
constexpr Duration kMinute = 60 * kSecond;

constexpr Duration Micros(double us) {
  return static_cast<Duration>(us * static_cast<double>(kMicrosecond));
}
constexpr Duration Millis(double ms) {
  return static_cast<Duration>(ms * static_cast<double>(kMillisecond));
}
constexpr Duration Seconds(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}

/// Converts a duration to fractional microseconds (trace-event JSON
/// timestamps are expressed in µs).
constexpr double ToMicros(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

/// Converts a duration to fractional milliseconds (for reporting).
constexpr double ToMillis(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Converts a duration to fractional seconds (for reporting).
constexpr double ToSeconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Renders a time as "mm:ss.mmm" for logs and experiment output.
std::string FormatTime(Time t);

}  // namespace dcg::sim

#endif  // DCG_SIM_TIME_H_
