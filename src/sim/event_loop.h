#ifndef DCG_SIM_EVENT_LOOP_H_
#define DCG_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/time.h"

namespace dcg::sim {

/// Identifies a scheduled event so it can be cancelled. Encodes a slab slot
/// and a generation; ids are never reused (the generation advances every
/// time a slot fires or is cancelled), so a stale id is always a no-op.
using EventId = uint64_t;

/// Single-threaded discrete-event scheduler.
///
/// Events are callbacks scheduled at absolute simulated times. `Run()` pops
/// them in (time, insertion-order) order, advancing the logical clock to each
/// event's timestamp before invoking it. Two events at the same timestamp
/// fire in the order they were scheduled, which keeps runs deterministic.
///
/// Callbacks live inline in a slab of slots recycled through a free list —
/// no per-event hash-map lookup, insert, or erase on the hot path. The
/// priority queue is a 4-ary min-heap of POD entries carrying the slot and
/// the generation the id was issued under; cancellation just bumps the
/// slot's generation, and the stale queue entry is discarded when it
/// surfaces (or swept out wholesale when tombstones outnumber live events,
/// so cancel-heavy churn cannot balloon the heap). Firing order is a pure
/// function of (time, seq) — a total order, since seq is unique — so
/// neither slot recycling, heap arity, nor compaction can perturb a seeded
/// run.
///
/// The loop is the spine of the whole reproduction: servers, networks,
/// clients, and the Read Balancer are all expressed as chains of events.
class EventLoop {
 public:
  EventLoop() = default;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current simulated time. Starts at 0.
  Time Now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at`. Scheduling in the past
  /// (before `Now()`) clamps to `Now()`; the event still runs.
  EventId ScheduleAt(Time at, std::function<void()> fn);

  /// Schedules `fn` to run `delay` from now. Negative delays clamp to 0.
  EventId ScheduleAfter(Duration delay, std::function<void()> fn);

  /// Cancels a pending event. Returns true if the event existed and had not
  /// yet fired. Cancelling an already-fired or unknown id is a no-op.
  bool Cancel(EventId id);

  /// Runs events until the queue is empty or the clock would pass `until`.
  /// Events scheduled exactly at `until` do run. Returns the number of
  /// events executed.
  uint64_t RunUntil(Time until);

  /// Runs until the queue is empty.
  uint64_t RunAll();

  /// Executes at most one pending event. Returns false if the queue is empty.
  bool Step();

  /// Number of live (non-cancelled) events waiting in the queue.
  size_t PendingEvents() const { return pending_; }

 private:
  struct Event {
    Time at;
    uint64_t seq;  // tie-breaker: insertion order
    uint32_t slot;
    uint32_t gen;  // generation the id was issued under
  };
  static bool Sooner(const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }
  /// One slab slot. `gen` advances on fire/cancel, which simultaneously
  /// invalidates the outstanding EventId and any queue entry pointing here.
  struct Slot {
    std::function<void()> fn;
    uint32_t gen = 1;  // 0 is reserved so EventId 0 is never valid
    bool live = false;
  };

  static EventId MakeId(uint32_t slot, uint32_t gen) {
    return (static_cast<uint64_t>(slot) << 32) | gen;
  }

  // Frees a slot after fire/cancel: drops the callback's captured state,
  // advances the generation, and recycles the index.
  void ReleaseSlot(uint32_t slot_idx);

  // Slots live in fixed-size chunks so slab growth never moves (and never
  // re-constructs) existing callbacks; a slot's address is stable for life.
  static constexpr uint32_t kSlabChunkBits = 8;
  static constexpr uint32_t kSlabChunkSize = 1u << kSlabChunkBits;

  Slot& SlotAt(uint32_t i) {
    return slabs_[i >> kSlabChunkBits][i & (kSlabChunkSize - 1)];
  }
  const Slot& SlotAt(uint32_t i) const {
    return slabs_[i >> kSlabChunkBits][i & (kSlabChunkSize - 1)];
  }

  // True when the heap entry's slot was cancelled or refired since the
  // entry was pushed.
  bool IsStale(const Event& ev) const {
    const Slot& slot = SlotAt(ev.slot);
    return !slot.live || slot.gen != ev.gen;
  }

  // 4-ary min-heap over (at, seq): shallower than a binary heap, and each
  // sift-down level reads one contiguous run of children — fewer cache
  // lines per pop when the heap is deep.
  void HeapPush(const Event& ev);
  void HeapPop();
  void SiftDown(size_t i);

  // Sweeps cancelled tombstones out of the heap when they outnumber live
  // events; amortized O(1) per cancel.
  void CompactIfWorthwhile();

  // Discards cancelled tombstones at the head of the queue. Returns the
  // next live event, or nullptr if the queue drained.
  const Event* PeekLive();

  // Pops `ev` (the current queue head) and runs its callback.
  void Fire(const Event& ev);

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  size_t pending_ = 0;
  size_t stale_in_heap_ = 0;
  uint32_t slot_count_ = 0;  // slots ever created, across all chunks
  std::vector<Event> heap_;
  std::vector<std::unique_ptr<Slot[]>> slabs_;
  std::vector<uint32_t> free_slots_;
};

}  // namespace dcg::sim

#endif  // DCG_SIM_EVENT_LOOP_H_
