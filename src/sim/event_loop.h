#ifndef DCG_SIM_EVENT_LOOP_H_
#define DCG_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace dcg::sim {

/// Identifies a scheduled event so it can be cancelled.
using EventId = uint64_t;

/// Single-threaded discrete-event scheduler.
///
/// Events are callbacks scheduled at absolute simulated times. `Run()` pops
/// them in (time, insertion-order) order, advancing the logical clock to each
/// event's timestamp before invoking it. Two events at the same timestamp
/// fire in the order they were scheduled, which keeps runs deterministic.
///
/// The loop is the spine of the whole reproduction: servers, networks,
/// clients, and the Read Balancer are all expressed as chains of events.
class EventLoop {
 public:
  EventLoop() = default;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current simulated time. Starts at 0.
  Time Now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at`. Scheduling in the past
  /// (before `Now()`) clamps to `Now()`; the event still runs.
  EventId ScheduleAt(Time at, std::function<void()> fn);

  /// Schedules `fn` to run `delay` from now. Negative delays clamp to 0.
  EventId ScheduleAfter(Duration delay, std::function<void()> fn);

  /// Cancels a pending event. Returns true if the event existed and had not
  /// yet fired. Cancelling an already-fired or unknown id is a no-op.
  bool Cancel(EventId id);

  /// Runs events until the queue is empty or the clock would pass `until`.
  /// Events scheduled exactly at `until` do run. Returns the number of
  /// events executed.
  uint64_t RunUntil(Time until);

  /// Runs until the queue is empty.
  uint64_t RunAll();

  /// Executes at most one pending event. Returns false if the queue is empty.
  bool Step();

  /// Number of live (non-cancelled) events waiting in the queue.
  size_t PendingEvents() const { return callbacks_.size(); }

 private:
  struct Event {
    Time at;
    uint64_t seq;  // tie-breaker: insertion order
    EventId id;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Discards cancelled tombstones at the head of the queue. Returns false
  // if the queue drained.
  bool SkipTombstones();

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // Callbacks for live events; erased on fire or cancel. Cancelled events
  // leave a tombstone in queue_ that is skipped when popped.
  std::unordered_map<EventId, std::function<void()>> callbacks_;
};

}  // namespace dcg::sim

#endif  // DCG_SIM_EVENT_LOOP_H_
