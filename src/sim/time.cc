#include "sim/time.h"

#include <cstdio>

namespace dcg::sim {

std::string FormatTime(Time t) {
  const int64_t total_ms = t / kMillisecond;
  const int64_t ms = total_ms % 1000;
  const int64_t total_s = total_ms / 1000;
  const int64_t s = total_s % 60;
  const int64_t m = total_s / 60;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%02lld:%02lld.%03lld",
                static_cast<long long>(m), static_cast<long long>(s),
                static_cast<long long>(ms));
  return buf;
}

}  // namespace dcg::sim
