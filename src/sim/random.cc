#include "sim/random.h"

namespace dcg::sim {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  fork_counter_ = 0;
}

Rng Rng::Fork() {
  // Mix the parent's next output with a fork counter so forks are distinct
  // even if the parent is not advanced between calls.
  uint64_t base = NextU64() ^ (0xa0761d6478bd642fULL * ++fork_counter_);
  return Rng(base);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t r;
  do {
    r = NextU64();
  } while (r >= limit);
  return lo + static_cast<int64_t>(r % span);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

double Rng::LogNormal(double mean, double sigma) {
  // Choose mu so that E[exp(N(mu, sigma^2))] == mean.
  const double mu = std::log(mean) - 0.5 * sigma * sigma;
  return std::exp(Normal(mu, sigma));
}

}  // namespace dcg::sim
