#ifndef DCG_SIM_RANDOM_H_
#define DCG_SIM_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace dcg::sim {

/// Deterministic pseudo-random generator (xoshiro256++), seeded via
/// SplitMix64 so any 64-bit seed yields a well-mixed state.
///
/// We implement our own generator instead of `std::mt19937` so that streams
/// are reproducible across standard libraries and cheap to fork: every
/// simulated component (each client, each server, the workload generators)
/// gets an independent child stream derived from the experiment seed, which
/// keeps component behaviour stable when other components are added or
/// removed.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(uint64_t seed);

  /// Derives an independent child generator. Successive calls on the same
  /// parent produce distinct streams.
  Rng Fork();

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  /// Standard normal via Box-Muller (no state carried between calls).
  double Normal(double mean, double stddev);

  /// Log-normal with the given *linear-space* mean and sigma of the
  /// underlying normal. Used for heavy-tailed service times.
  double LogNormal(double mean, double sigma);

 private:
  uint64_t s_[4];
  uint64_t fork_counter_ = 0;
};

}  // namespace dcg::sim

#endif  // DCG_SIM_RANDOM_H_
